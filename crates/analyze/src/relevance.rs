//! The static relevance matrix: which statements can touch which
//! views.
//!
//! The runtime engine answers this per commit with label footprints
//! (`op_footprint` / `touches` in `xivm_core::parallel`); here the
//! same question is answered *once*, from shapes alone. A verdict of
//! [`Verdict::Irrelevant`] is a proof obligation: for every
//! DTD-conforming document, applying the statement leaves the view's
//! extent — tuples *and* stored text — unchanged, so the engine can
//! skip footprint computation, maintenance and delta harvesting for
//! that view entirely.

use crate::shape::StatementShape;
use crate::view::ViewSummary;
use std::fmt;

/// Outcome of one (view, statement) relevance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Provably no effect on the view — the engine may skip it.
    Irrelevant,
    /// The label sets overlap with both sides precisely known; the
    /// statement plausibly affects the view.
    Relevant,
    /// Overlap forced by an `Any` widening (wildcard, missing schema,
    /// unparseable forest): no static claim either way.
    Unknown,
}

impl Verdict {
    /// Only [`Verdict::Irrelevant`] authorizes skipping runtime work;
    /// `Relevant` and `Unknown` both fall back to the dynamic path.
    pub fn can_skip(self) -> bool {
        matches!(self, Verdict::Irrelevant)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Irrelevant => "irrelevant",
            Verdict::Relevant => "relevant",
            Verdict::Unknown => "unknown",
        })
    }
}

/// Decides whether `stmt` can affect `view`.
///
/// Three channels can carry an effect, each checked conservatively:
///
/// * **creation** — a created label may be bindable by the pattern;
/// * **destruction** — a destroyed label may be bindable, or the view
///   has a `//@attr` node (whose owner element the destroyed subtree
///   may contain under *any* label — [`ViewSummary::desc_attr`]);
/// * **text** — a surviving node whose string value changes may be
///   bound by a `val` / `cont` / `[val = c]` node.
///
/// All three silent ⇒ [`Verdict::Irrelevant`]. A dead statement
/// changes nothing; a dead view has nothing to change.
pub fn relevance(view: &ViewSummary, stmt: &StatementShape) -> Verdict {
    if stmt.dead || view.dead {
        return Verdict::Irrelevant;
    }
    let creation = view.labels.may_intersect(&stmt.creates);
    let destruction = if view.desc_attr && !stmt.destroys.is_none() {
        true
    } else {
        view.labels.may_intersect(&stmt.destroys)
    };
    let text = view.text_labels.may_intersect(&stmt.touch_scope);
    if !creation && !destruction && !text {
        return Verdict::Irrelevant;
    }
    let widened = view.labels.is_any()
        || stmt.creates.is_any()
        || stmt.destroys.is_any()
        || (text && (view.text_labels.is_any() || stmt.touch_scope.is_any()))
        || (view.desc_attr && destruction);
    if widened {
        Verdict::Unknown
    } else {
        Verdict::Relevant
    }
}

/// The full (view × statement) verdict matrix, row-major by view.
#[derive(Debug, Clone)]
pub struct RelevanceMatrix {
    /// View names, one per row.
    pub views: Vec<String>,
    /// Statement display strings, one per column.
    pub statements: Vec<String>,
    /// `verdicts[view][statement]`.
    pub verdicts: Vec<Vec<Verdict>>,
}

impl RelevanceMatrix {
    /// Builds the matrix from summaries and shapes.
    pub fn build(
        views: &[ViewSummary],
        statements: &[(String, StatementShape)],
    ) -> RelevanceMatrix {
        RelevanceMatrix {
            views: views.iter().map(|v| v.name.clone()).collect(),
            statements: statements.iter().map(|(d, _)| d.clone()).collect(),
            verdicts: views
                .iter()
                .map(|v| statements.iter().map(|(_, s)| relevance(v, s)).collect())
                .collect(),
        }
    }

    /// Fraction of (view, statement) pairs proved irrelevant.
    pub fn skip_rate(&self) -> f64 {
        let total: usize = self.verdicts.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let skipped = self.verdicts.iter().flatten().filter(|v| v.can_skip()).count();
        skipped as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaInfo;
    use xivm_dtd::grammar::figure_5a;
    use xivm_pattern::parse_pattern;
    use xivm_update::UpdateStatement;

    fn view(text: &str, s: Option<&SchemaInfo>) -> ViewSummary {
        ViewSummary::from_pattern("v", &parse_pattern(text).unwrap(), s)
    }

    fn shape(s: Option<&SchemaInfo>, stmt: &UpdateStatement) -> StatementShape {
        StatementShape::of(s, stmt)
    }

    #[test]
    fn disjoint_labels_are_irrelevant() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let v = view("/d1/a{id}", Some(&s));
        // Inserting below b creates nothing the view binds and only
        // changes string values of b and its ancestors a, d1 — but the
        // view stores no text.
        let ins = shape(Some(&s), &UpdateStatement::insert("//b", "<c/>").unwrap());
        assert_eq!(relevance(&v, &ins), Verdict::Irrelevant);
        // Deleting a c can change nothing structural the view binds.
        let del = shape(Some(&s), &UpdateStatement::delete("//b/c").unwrap());
        assert_eq!(relevance(&v, &del), Verdict::Irrelevant);
    }

    #[test]
    fn text_sensitivity_blocks_the_skip() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let v = view("/d1/a{val}", Some(&s));
        // a is in the insert's touch scope (an ancestor of b).
        let ins = shape(Some(&s), &UpdateStatement::insert("//b", "<c>t</c>").unwrap());
        assert_eq!(relevance(&v, &ins), Verdict::Relevant);
    }

    #[test]
    fn destruction_closure_fires() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let v = view("//b{id}", Some(&s));
        // Deleting an a deletes the b's inside it.
        let del = shape(Some(&s), &UpdateStatement::delete("//a").unwrap());
        assert_eq!(relevance(&v, &del), Verdict::Relevant);
    }

    #[test]
    fn dead_sides_are_irrelevant() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let dead_view = view("//zzz{id}", Some(&s));
        let ins = shape(Some(&s), &UpdateStatement::insert("//b", "<zzz/>").unwrap());
        assert_eq!(relevance(&dead_view, &ins), Verdict::Irrelevant);
        let live_view = view("//b{id}", Some(&s));
        let dead_stmt = shape(Some(&s), &UpdateStatement::insert("/d1/zzz", "<b/>").unwrap());
        assert_eq!(relevance(&live_view, &dead_stmt), Verdict::Irrelevant);
    }

    #[test]
    fn widening_yields_unknown_not_relevant() {
        let v = view("//a//*{id}", None);
        let ins = shape(None, &UpdateStatement::insert("//b", "<c/>").unwrap());
        assert_eq!(relevance(&v, &ins), Verdict::Unknown);
        // desc-attr views can lose tuples to any deletion.
        let va = view("//a//@id{val}", None);
        let del = shape(None, &UpdateStatement::delete("//q/@w").unwrap());
        assert_eq!(relevance(&va, &del), Verdict::Unknown);
    }

    #[test]
    fn matrix_counts_skips() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let views = vec![view("/d1/a{id}", Some(&s)), view("//c{id}", Some(&s))];
        let stmts = vec![(
            "delete //b/c".to_owned(),
            shape(Some(&s), &UpdateStatement::delete("//b/c").unwrap()),
        )];
        let m = RelevanceMatrix::build(&views, &stmts);
        assert_eq!(m.verdicts[0][0], Verdict::Irrelevant);
        assert_eq!(m.verdicts[1][0], Verdict::Relevant);
        assert!((m.skip_rate() - 0.5).abs() < 1e-9);
    }
}
