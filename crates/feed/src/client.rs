//! The replica side: a TCP client that maintains a byte-identical
//! copy of one served view by replaying its event stream.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use xivm_core::snapshot::{decode_event, decode_store, encode_store};
use xivm_core::subscribe::FeedEvent;
use xivm_core::view_store::ViewStore;

use crate::wire::{self, FeedError, FrameKind};

/// How long a blocking read in [`ReplicaClient::sync_to`] waits for
/// the next frame before surfacing an [`FeedError::Io`] timeout —
/// a protocol bug fails the caller instead of hanging it.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A remote replica of one view — see the crate docs for the
/// protocol and [`crate::FeedServer`] for the serving side.
///
/// The client tracks a high-water mark (the last applied commit
/// sequence number) and a [`ViewStore`]. [`Self::sync_to`] reads
/// frames until the mark reaches a target: delta events must arrive
/// strictly gapless (`seq == mark + 1` — anything else is a
/// [`FeedError::Protocol`]), snapshots replace the store wholesale,
/// and a `Lagged` marker triggers an automatic reconnect whose
/// handshake recovers through replay-or-snapshot. After
/// `sync_to(server_seq)`, [`Self::store`] re-encodes byte-identically
/// to the source view.
pub struct ReplicaClient {
    addr: SocketAddr,
    view: String,
    stream: TcpStream,
    store: Option<ViewStore>,
    seq: u64,
    reconnects: u64,
}

impl ReplicaClient {
    /// Connects a fresh replica (no state): the server answers the
    /// handshake with a full snapshot at its current sequence number.
    pub fn connect(addr: impl ToSocketAddrs, view: &str) -> Result<ReplicaClient, FeedError> {
        let addr = resolve(addr)?;
        let stream = dial(addr, view, false, 0)?;
        Ok(ReplicaClient {
            addr,
            view: view.to_owned(),
            stream,
            store: None,
            seq: 0,
            reconnects: 0,
        })
    }

    /// Reconnects a replica that already holds state through `seq`
    /// (e.g. after a crash with the store persisted): the server
    /// replays the missing events from its retained window, or sends
    /// a snapshot when the gap outruns it.
    pub fn resume(
        addr: impl ToSocketAddrs,
        view: &str,
        store: ViewStore,
        seq: u64,
    ) -> Result<ReplicaClient, FeedError> {
        let addr = resolve(addr)?;
        let stream = dial(addr, view, true, seq)?;
        Ok(ReplicaClient {
            addr,
            view: view.to_owned(),
            stream,
            store: Some(store),
            seq,
            reconnects: 0,
        })
    }

    /// The replicated store, once the first snapshot or resume state
    /// is in place.
    pub fn store(&self) -> Option<&ViewStore> {
        self.store.as_ref()
    }

    /// Last applied commit sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Times the connection was re-established (lag recovery or
    /// explicit [`Self::reconnect`]).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// True iff the replica's bytes equal `source`'s bytes — the
    /// replication acceptance check ([`encode_store`] is canonical:
    /// document order, deterministic layout).
    pub fn identical_to(&self, source: &ViewStore) -> bool {
        self.store.as_ref().is_some_and(|s| encode_store(s) == encode_store(source))
    }

    /// Reads frames until the replica reflects commit `target` (and
    /// has a store). Delta events beyond the mark must be exactly
    /// `mark + 1`; events at or below it (possible right after a
    /// snapshot recovery) are skipped.
    pub fn sync_to(&mut self, target: u64) -> Result<(), FeedError> {
        while self.seq < target || self.store.is_none() {
            let (kind, payload) = wire::read_frame(&mut self.stream)?;
            match kind {
                FrameKind::Event => match decode_event(&payload)? {
                    FeedEvent::Delta(ev) => {
                        if ev.seq <= self.seq && self.store.is_some() {
                            continue;
                        }
                        let store = self.store.as_mut().ok_or_else(|| {
                            FeedError::Protocol("delta before first snapshot".into())
                        })?;
                        if ev.seq != self.seq + 1 {
                            return Err(FeedError::Protocol(format!(
                                "sequence gap: replica at {}, event is {}",
                                self.seq, ev.seq
                            )));
                        }
                        ev.delta.replay(store);
                        self.seq = ev.seq;
                    }
                    FeedEvent::Lagged(_) => {
                        // The server can no longer replay the gap for
                        // anyone: recover through a fresh handshake
                        // (replay-or-snapshot against our mark).
                        self.reconnect()?;
                    }
                },
                FrameKind::Snapshot => {
                    let (seq, bytes) = wire::parse_snapshot(&payload)?;
                    self.store = Some(decode_store(bytes)?);
                    self.seq = seq;
                }
                FrameKind::Deny => {
                    return Err(FeedError::Denied(String::from_utf8_lossy(&payload).into_owned()))
                }
                FrameKind::Hello => {
                    return Err(FeedError::Protocol("unexpected hello from server".into()))
                }
            }
        }
        Ok(())
    }

    /// Re-establishes the connection, offering the current state as
    /// the resume point. Used internally on `Lagged` markers and by
    /// crash/reconnect tests after [`Self::kill`].
    pub fn reconnect(&mut self) -> Result<(), FeedError> {
        self.stream = dial(self.addr, &self.view, self.store.is_some(), self.seq)?;
        self.reconnects += 1;
        Ok(())
    }

    /// Test helper: severs the connection abruptly (both directions),
    /// simulating a crash mid-stream. The replica's state survives;
    /// [`Self::reconnect`] resumes from the high-water mark.
    pub fn kill(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

fn resolve(addr: impl ToSocketAddrs) -> Result<SocketAddr, FeedError> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| FeedError::Protocol("address resolved to nothing".into()))
}

/// Dials and runs the client half of the handshake; catch-up frames
/// (replay or snapshot) arrive on the returned stream.
fn dial(
    addr: SocketAddr,
    view: &str,
    has_state: bool,
    high_water: u64,
) -> Result<TcpStream, FeedError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    wire::write_stream_header(&mut stream)?;
    wire::read_stream_header(&mut stream)?;
    wire::write_frame(
        &mut stream,
        FrameKind::Hello,
        &wire::hello_payload(has_state, high_water, view),
    )?;
    Ok(stream)
}
