//! The conjunctive XQuery view dialect of Figure 3 and its translation
//! into tree patterns (after [Arion et al. 2006]).
//!
//! ```text
//! q      := (let absVar return)? for (absVar,)? relVar (relVar,)*
//!           (where pred (and pred)*)? return ret
//! absVar := $x in doc(uri)/p          p ∈ XPath{/,//,*,[]}
//! relVar := $x in $y/p
//! pred   := string($x) = c  |  $x/p = c  |  $x/p
//! ret    := <l> elem* </l>  |  expr (, expr)*
//! elem   := <li>{ expr }</li>
//! expr   := $x | string($x) | id($x) | $x/p | $x/p/text()
//! ```
//!
//! Every node that contributes a stored attribute also stores its ID —
//! Algorithm 4 (PIMT) requires IDs alongside any `val`/`cont`.

use crate::pattern::{Annotations, NodeTest, PatternNodeId, TreePattern};
use crate::xpath::ast::{LocationPath, XNodeTest, XPred};
use crate::xpath::parser::parse_xpath;
use std::collections::HashMap;
use std::fmt;

/// View-language error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewParseError {
    pub message: String,
}

impl fmt::Display for ViewParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view parse error: {}", self.message)
    }
}

impl std::error::Error for ViewParseError {}

fn err(message: impl Into<String>) -> ViewParseError {
    ViewParseError { message: message.into() }
}

/// Parses a view in the Figure 3 dialect and translates it to its tree
/// pattern.
pub fn parse_view(input: &str) -> Result<TreePattern, ViewParseError> {
    let mut text = input.trim();

    // Optional `let $v := doc("uri") return` prefix.
    let mut doc_vars: Vec<String> = Vec::new();
    while text.starts_with("let ") {
        let (var, rest) = parse_let(text)?;
        doc_vars.push(var);
        text = rest;
    }

    if !text.starts_with("for ") {
        return Err(err("expected 'for'"));
    }
    text = &text["for ".len()..];

    let (for_part, rest) = split_keyword(text, &["where", "return"]);
    let (where_part, return_part) = if rest.starts_with("where") {
        let after = rest.strip_prefix("where").expect("split at keyword");
        let (w, r) = split_keyword(after, &["return"]);
        if !r.starts_with("return") {
            return Err(err("expected 'return' after where clause"));
        }
        (Some(w.trim().to_owned()), r["return".len()..].trim().to_owned())
    } else if rest.starts_with("return") {
        let body = rest.strip_prefix("return").expect("split at keyword");
        (None, body.trim().to_owned())
    } else {
        return Err(err("expected 'return'"));
    };

    let mut t = Translator { pattern: None, vars: HashMap::new(), doc_vars };
    for decl in split_top_level(&for_part, ',') {
        t.for_binding(decl.trim())?;
    }
    if let Some(w) = where_part {
        for cond in split_on_and(&w) {
            t.where_condition(cond.trim())?;
        }
    }
    t.return_clause(&return_part)?;
    t.pattern.ok_or_else(|| err("view binds no variables"))
}

fn parse_let(text: &str) -> Result<(String, &str), ViewParseError> {
    // let $v := doc("uri") return REST
    let body = text.strip_prefix("let ").ok_or_else(|| err("expected let"))?;
    let body = body.trim_start();
    let var = parse_var_name(body)?;
    let after_var = body[var.len() + 1..].trim_start();
    let after_assign =
        after_var.strip_prefix(":=").ok_or_else(|| err("expected ':='"))?.trim_start();
    if !after_assign.starts_with("doc(") {
        return Err(err("let bindings must be doc(...) sources"));
    }
    let close = after_assign.find(')').ok_or_else(|| err("unterminated doc(...)"))?;
    let rest = after_assign[close + 1..].trim_start();
    let rest = rest.strip_prefix("return").ok_or_else(|| err("expected 'return' after let"))?;
    Ok((var, rest.trim_start()))
}

fn parse_var_name(text: &str) -> Result<String, ViewParseError> {
    if !text.starts_with('$') {
        return Err(err(format!("expected a variable, found: {text:.20}")));
    }
    let name: String =
        text[1..].chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        return Err(err("empty variable name"));
    }
    Ok(name)
}

/// Splits off everything up to the first *top-level* occurrence of one
/// of the keywords (outside brackets/quotes), returning (head, tail
/// starting at the keyword or empty).
fn split_keyword<'a>(text: &'a str, keywords: &[&str]) -> (String, &'a str) {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'[' | b'(' => depth += 1,
            b']' | b')' => depth -= 1,
            b'"' | b'\'' => {
                let q = bytes[i];
                i += 1;
                while i < bytes.len() && bytes[i] != q {
                    i += 1;
                }
            }
            _ => {}
        }
        if depth == 0 {
            for kw in keywords {
                if text[i..].starts_with(kw) {
                    let before = i == 0 || bytes[i - 1].is_ascii_whitespace();
                    let after_idx = i + kw.len();
                    let after = after_idx >= bytes.len()
                        || bytes[after_idx].is_ascii_whitespace()
                        || bytes[after_idx] == b'<'
                        || bytes[after_idx] == b'(';
                    if before && after {
                        return (text[..i].to_owned(), &text[i..]);
                    }
                }
            }
        }
        i += 1;
    }
    (text.to_owned(), "")
}

/// Splits on a separator at bracket/paren/quote depth 0.
fn split_top_level(text: &str, sep: char) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'[' | b'(' => depth += 1,
            b']' | b')' => depth -= 1,
            b'"' | b'\'' => {
                let q = bytes[i];
                i += 1;
                while i < bytes.len() && bytes[i] != q {
                    i += 1;
                }
            }
            c if c == sep as u8 && depth == 0 => {
                parts.push(text[start..i].to_owned());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(text[start..].to_owned());
    parts.retain(|p| !p.trim().is_empty());
    parts
}

fn split_on_and(text: &str) -> Vec<String> {
    // split on top-level ' and '
    let mut parts = Vec::new();
    let mut rest = text;
    loop {
        let (head, tail) = split_keyword(rest, &["and"]);
        parts.push(head);
        if tail.is_empty() {
            break;
        }
        rest = &tail["and".len()..];
    }
    parts
}

struct Translator {
    pattern: Option<TreePattern>,
    vars: HashMap<String, PatternNodeId>,
    doc_vars: Vec<String>,
}

impl Translator {
    fn for_binding(&mut self, decl: &str) -> Result<(), ViewParseError> {
        let var = parse_var_name(decl)?;
        let after = decl[var.len() + 1..].trim_start();
        let after = after.strip_prefix("in").ok_or_else(|| err("expected 'in'"))?.trim_start();
        let (anchor, path_text) = self.split_anchor(after)?;
        let path = parse_xpath(&path_text).map_err(|e| err(e.to_string()))?;
        let node = self.extend_with_path(anchor, &path, false)?;
        self.vars.insert(var, node);
        Ok(())
    }

    /// Splits `doc("uri")/p`, `$x/p` or `/p` into an anchor node and
    /// the path text.
    fn split_anchor(&self, text: &str) -> Result<(Option<PatternNodeId>, String), ViewParseError> {
        if let Some(rest) = text.strip_prefix("doc(") {
            let close = rest.find(')').ok_or_else(|| err("unterminated doc(...)"))?;
            return Ok((None, rest[close + 1..].trim().to_owned()));
        }
        if text.starts_with('$') {
            let var = parse_var_name(text)?;
            let rest = text[var.len() + 1..].trim().to_owned();
            if self.doc_vars.contains(&var) {
                return Ok((None, rest)); // let-bound document variable
            }
            let node =
                *self.vars.get(&var).ok_or_else(|| err(format!("unknown variable ${var}")))?;
            return Ok((Some(node), rest));
        }
        Ok((None, text.trim().to_owned()))
    }

    /// Walks `path` from `anchor` (or the pattern root when `None`),
    /// adding pattern nodes; returns the node for the last step.
    /// `for_return` marks chains built for return expressions.
    fn extend_with_path(
        &mut self,
        anchor: Option<PatternNodeId>,
        path: &LocationPath,
        _for_return: bool,
    ) -> Result<PatternNodeId, ViewParseError> {
        let mut steps = path.steps.as_slice();
        let mut cur: PatternNodeId = match anchor {
            Some(n) => n,
            None => {
                // absolute: the first step is (or merges with) the root
                let first = steps.first().ok_or_else(|| err("empty path"))?;
                let test = Self::step_test(&first.test)?;
                match &mut self.pattern {
                    None => {
                        let mut p = TreePattern::new(test);
                        p.set_root_edge(first.axis);
                        self.pattern = Some(p);
                    }
                    Some(p) => {
                        let root = p.root();
                        if p.node(root).test != test || p.node(root).edge != first.axis {
                            return Err(err("absolute variables must share the same first step"));
                        }
                    }
                }
                let p = self.pattern.as_mut().unwrap();
                let root = p.root();
                let preds = first.preds.clone();
                for pr in &preds {
                    self.translate_pred(root, pr)?;
                }
                steps = &steps[1..];
                root
            }
        };
        for step in steps {
            if matches!(step.test, XNodeTest::SelfNode) {
                continue;
            }
            let test = Self::step_test(&step.test)?;
            let p =
                self.pattern.as_mut().ok_or_else(|| err("relative path before any absolute"))?;
            let node = p.add_child(cur, step.axis, test);
            for pr in &step.preds {
                self.translate_pred(node, pr)?;
            }
            cur = node;
        }
        Ok(cur)
    }

    fn step_test(test: &XNodeTest) -> Result<NodeTest, ViewParseError> {
        match test {
            XNodeTest::Name(n) => Ok(NodeTest::Name(n.clone())),
            XNodeTest::Attribute(a) => Ok(NodeTest::Name(format!("@{a}"))),
            XNodeTest::Wildcard => Ok(NodeTest::Wildcard),
            XNodeTest::Text => Err(err("text() only allowed at the end of return expressions")),
            XNodeTest::SelfNode => Err(err("'.' steps are not part of the view dialect")),
        }
    }

    /// Predicates become existential branches (conjunctive only).
    fn translate_pred(&mut self, node: PatternNodeId, pred: &XPred) -> Result<(), ViewParseError> {
        match pred {
            XPred::Exists(path) => {
                self.extend_with_path(Some(node), path, false)?;
                Ok(())
            }
            XPred::ValEq(path, c) => {
                let target =
                    if path.steps.len() == 1 && matches!(path.steps[0].test, XNodeTest::SelfNode) {
                        node
                    } else {
                        self.extend_with_path(Some(node), path, false)?
                    };
                self.pattern.as_mut().unwrap().set_val_pred(target, c.clone());
                Ok(())
            }
            XPred::And(a, b) => {
                self.translate_pred(node, a)?;
                self.translate_pred(node, b)
            }
            XPred::Or(_, _) => Err(err("the view dialect is conjunctive: 'or' not allowed")),
        }
    }

    fn where_condition(&mut self, cond: &str) -> Result<(), ViewParseError> {
        // string($x) = "c"
        if let Some(rest) = cond.strip_prefix("string(") {
            let var = parse_var_name(rest.trim_start())?;
            let node = *self.vars.get(&var).ok_or_else(|| err(format!("unknown ${var}")))?;
            let after = rest[rest.find(')').ok_or_else(|| err("expected ')'"))? + 1..].trim();
            let value = parse_eq_const(after)?;
            self.pattern.as_mut().unwrap().set_val_pred(node, value);
            return Ok(());
        }
        // $x/p = "c"   or   $x/p (existential)
        let var = parse_var_name(cond)?;
        let node = *self.vars.get(&var).ok_or_else(|| err(format!("unknown ${var}")))?;
        let rest = cond[var.len() + 1..].trim();
        let (path_text, eq_part) = match find_top_level_eq(rest) {
            Some(i) => (&rest[..i], Some(rest[i + 1..].trim())),
            None => (rest, None),
        };
        let target = if path_text.trim().is_empty() {
            node
        } else {
            let path = parse_xpath(path_text.trim()).map_err(|e| err(e.to_string()))?;
            self.extend_with_path(Some(node), &path, false)?
        };
        if let Some(eq) = eq_part {
            let value = strip_quotes(eq)?;
            self.pattern.as_mut().unwrap().set_val_pred(target, value);
        }
        Ok(())
    }

    fn return_clause(&mut self, ret: &str) -> Result<(), ViewParseError> {
        let ret = ret.trim();
        let exprs: Vec<String> = if ret.starts_with('<') {
            extract_braced_exprs(ret)
        } else {
            let inner = ret.strip_prefix('(').and_then(|r| r.strip_suffix(')')).unwrap_or(ret);
            split_top_level(inner, ',')
        };
        if exprs.is_empty() {
            return Err(err("return clause stores nothing"));
        }
        for e in exprs {
            self.return_expr(e.trim())?;
        }
        Ok(())
    }

    fn return_expr(&mut self, expr: &str) -> Result<(), ViewParseError> {
        // id($x) | string($x) | $x | $x/p | $x/p/text()
        let annotate = |this: &mut Self, node: PatternNodeId, ann: Annotations| {
            let mut with_id = ann;
            with_id.id = true; // IDs accompany every stored attribute
            this.pattern.as_mut().unwrap().annotate(node, with_id);
        };
        if let Some(rest) = expr.strip_prefix("id(") {
            let var = parse_var_name(rest.trim_start())?;
            let node = *self.vars.get(&var).ok_or_else(|| err(format!("unknown ${var}")))?;
            annotate(self, node, Annotations::ID);
            return Ok(());
        }
        if let Some(rest) = expr.strip_prefix("string(") {
            let var = parse_var_name(rest.trim_start())?;
            let node = *self.vars.get(&var).ok_or_else(|| err(format!("unknown ${var}")))?;
            annotate(self, node, Annotations { id: true, val: true, cont: false });
            return Ok(());
        }
        let var = parse_var_name(expr)?;
        let node = *self.vars.get(&var).ok_or_else(|| err(format!("unknown ${var}")))?;
        let rest = expr[var.len() + 1..].trim();
        if rest.is_empty() {
            annotate(self, node, Annotations { id: true, val: false, cont: true });
            return Ok(());
        }
        // $x/p or $x/p/text()
        let (path_text, want_val) = match rest.strip_suffix("/text()") {
            Some(head) => (head, true),
            None => (rest, false),
        };
        let target = if path_text.is_empty() {
            node
        } else {
            let path = parse_xpath(path_text).map_err(|e| err(e.to_string()))?;
            self.extend_with_path(Some(node), &path, true)?
        };
        let ann = if want_val {
            Annotations { id: true, val: true, cont: false }
        } else {
            Annotations { id: true, val: false, cont: true }
        };
        annotate(self, target, ann);
        Ok(())
    }
}

fn parse_eq_const(text: &str) -> Result<String, ViewParseError> {
    let rest = text.strip_prefix('=').ok_or_else(|| err("expected '='"))?.trim();
    strip_quotes(rest)
}

fn strip_quotes(text: &str) -> Result<String, ViewParseError> {
    let t = text.trim();
    if (t.starts_with('"') && t.ends_with('"') && t.len() >= 2)
        || (t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2)
    {
        Ok(t[1..t.len() - 1].to_owned())
    } else {
        Err(err(format!("expected a quoted constant, found: {t}")))
    }
}

fn find_top_level_eq(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'[' | b'(' => depth += 1,
            b']' | b')' => depth -= 1,
            b'"' | b'\'' => {
                let q = bytes[i];
                i += 1;
                while i < bytes.len() && bytes[i] != q {
                    i += 1;
                }
            }
            b'=' if depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Pulls the `{ expr }` bodies out of an element-constructor return.
fn extract_braced_exprs(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            let start = i + 1;
            let mut depth = 1;
            i += 1;
            while i < bytes.len() && depth > 0 {
                match bytes[i] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            out.push(text[start..i - 1].trim().to_owned());
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3_sample_view() {
        // The paper's running example (Figures 3–4).
        let p = parse_view(
            "for $p in doc(\"confs\")//confs//paper, $a in $p/affiliation \
             return <result> <pid>{id($p)}</pid> <aid>{id($a)}</aid> \
             <acont>{$a}</acont> </result>",
        )
        .unwrap();
        assert_eq!(p.to_text(), "//confs//paper{id}/affiliation{id,cont}");
    }

    #[test]
    fn xmark_q1_shape() {
        let p = parse_view(
            "let $auction := doc(\"auction.xml\") return \
             for $b in $auction/site/people/person[@id] return $b/name/text()",
        )
        .unwrap();
        assert_eq!(p.to_text(), "/site/people/person[/@id]/name{id,val}");
    }

    #[test]
    fn where_clause_value_predicate() {
        let p = parse_view(
            "for $b in doc(\"a\")/site/open_auctions/open_auction \
             where $b/bidder/increase = \"4.50\" \
             return $b/bidder/increase/text()",
        )
        .unwrap();
        // the where-branch and the return-branch are distinct chains
        assert!(p.to_text().contains("increase[val=\"4.50\"]"));
        assert!(p.to_text().contains("increase{id,val}"));
        // site, open_auctions, open_auction, then two separate
        // bidder/increase chains (where-branch and return-branch)
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn where_string_of_variable() {
        let p = parse_view(
            "for $x in doc(\"d\")//a, $y in $x/b where string($y) = \"5\" return id($x)",
        )
        .unwrap();
        assert_eq!(p.to_text(), "//a{id}/b[val=\"5\"]");
    }

    #[test]
    fn multiple_return_items() {
        let p = parse_view(
            "for $i in doc(\"d\")/site/regions/namerica/item \
             return ($i/name/text(), $i/description)",
        )
        .unwrap();
        assert_eq!(p.to_text(), "/site/regions/namerica/item[/name{id,val}]/description{id,cont}");
    }

    #[test]
    fn predicate_with_value_inside_path() {
        let p = parse_view(
            "for $b in doc(\"a\")//open_auction \
             where $b/bidder/personref[@person = \"person12\"] \
             return $b/bidder/increase/text()",
        )
        .unwrap();
        assert!(p.to_text().contains("@person[val=\"person12\"]"));
    }

    #[test]
    fn or_in_view_is_rejected() {
        let r = parse_view("for $x in doc(\"d\")//a[b or c] return id($x)");
        assert!(r.is_err());
    }

    #[test]
    fn unknown_variable_is_rejected() {
        assert!(parse_view("for $x in doc(\"d\")//a return id($y)").is_err());
        assert!(parse_view("for $x in $nope/a return id($x)").is_err());
    }

    #[test]
    fn returned_subtree_of_variable() {
        let p = parse_view("for $b in doc(\"d\")/site/regions return $b//item").unwrap();
        assert_eq!(p.to_text(), "/site/regions//item{id,cont}");
    }

    #[test]
    fn missing_return_is_rejected() {
        assert!(parse_view("for $x in doc(\"d\")//a").is_err());
    }
}
