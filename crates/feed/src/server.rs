//! The feed server: one view's changefeed, broadcast to any number of
//! TCP replicas with bounded replay and snapshot fallback.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use xivm_core::database::{Database, ViewHandle};
use xivm_core::snapshot::{encode_event, encode_store};
use xivm_core::subscribe::{FeedEvent, SlowConsumerPolicy, Subscription};
use xivm_core::view_store::ViewStore;

use crate::wire::{self, FeedError, FrameKind};

/// How long the accept thread waits for a connecting client's
/// handshake before giving up on it (a stalled dialer must not wedge
/// the accept loop).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Shared between the accept thread (handshakes) and
/// [`FeedServer::pump`] (event fan-out). One lock covers the mirror,
/// the retained window and the client list, so a client's snapshot /
/// replay and its registration are atomic with respect to broadcasts:
/// every client sees snapshot-or-replay up to `seq`, then `seq + 1`,
/// `seq + 2`, … with nothing skipped and nothing duplicated.
struct Hub {
    view_name: String,
    /// Byte-identical replica of the served view, advanced by
    /// replaying every event — this is exactly what a remote replica
    /// reconstructs, so handshake snapshots come from here.
    mirror: ViewStore,
    /// Sequence number `mirror` reflects.
    seq: u64,
    /// The last `retain` event frames (payloads of
    /// [`encode_event`]), consecutive and ending at `seq`. Cleared
    /// when the server's own subscription lags.
    retained: VecDeque<(u64, Vec<u8>)>,
    retain: usize,
    clients: Vec<TcpStream>,
}

/// Serves one view's changefeed over TCP — see the crate docs for the
/// protocol and [`crate::ReplicaClient`] for the consuming side.
///
/// The server owns a subscription on the view and a background accept
/// thread; [`Self::pump`] (called after commits, e.g. on the event
/// loop that drives the database) drains the subscription, advances
/// the server-side mirror store, and broadcasts each event frame to
/// every connected replica. A reconnecting client offers its
/// high-water mark: the server replays from its bounded retained
/// window when possible and falls back to a full store snapshot
/// otherwise, so resumption is always correct and never unbounded in
/// memory.
pub struct FeedServer {
    view: ViewHandle,
    sub: Option<Subscription>,
    state: Arc<Mutex<Hub>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl FeedServer {
    /// Binds a server for `view` on `addr` (use port 0 for an
    /// OS-assigned port, then [`Self::local_addr`]). `retain` bounds
    /// the replay window: a replica more than `retain` events behind
    /// recovers through a snapshot instead.
    ///
    /// The server's own subscription is explicitly **unbounded** so
    /// the commit path never blocks on, or drops events for, the
    /// replication fan-out; use [`Self::bind_with`] to choose a
    /// bounded queue and policy deliberately.
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: &mut Database,
        view: ViewHandle,
        retain: usize,
    ) -> Result<FeedServer, FeedError> {
        Self::bind_with(addr, db, view, retain, None, SlowConsumerPolicy::Block)
    }

    /// [`Self::bind`] with an explicit subscription capacity and
    /// slow-consumer policy. Under [`SlowConsumerPolicy::DropAndMark`]
    /// a lagging server forwards the `Lagged` marker to every replica
    /// and resynchronizes its mirror from the live store; replicas
    /// recover through a reconnect-and-snapshot (the retained window
    /// is discarded, so the gap can never be silently replayed).
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        db: &mut Database,
        view: ViewHandle,
        retain: usize,
        capacity: Option<usize>,
        policy: SlowConsumerPolicy,
    ) -> Result<FeedServer, FeedError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let sub = db.subscribe_with(view, capacity, policy);
        let hub = Hub {
            view_name: db.name(view).to_owned(),
            mirror: db.store(view).clone(),
            seq: db.last_seq(),
            retained: VecDeque::new(),
            retain,
            clients: Vec::new(),
        };
        let state = Arc::new(Mutex::new(hub));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("xivm-feed-accept".into())
                .spawn(move || accept_loop(listener, &state, &shutdown))
                .map_err(FeedError::Io)?
        };
        Ok(FeedServer { view, sub: Some(sub), state, shutdown, accept: Some(accept), addr: local })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connected replicas right now.
    pub fn clients(&self) -> usize {
        self.state.lock().unwrap().clients.len()
    }

    /// The sequence number the server-side mirror (and thus every
    /// fully caught-up replica) reflects.
    pub fn seq(&self) -> u64 {
        self.state.lock().unwrap().seq
    }

    /// Drains the server's subscription and fans the events out:
    /// each delta advances the mirror, enters the retained window and
    /// is broadcast to every connected replica (dead connections are
    /// pruned). A `Lagged` marker is broadcast as-is, the retained
    /// window discarded, and the mirror resynchronized from the live
    /// store — connected replicas recover by reconnecting, which the
    /// marker tells them to do. Returns the number of events drained.
    ///
    /// Call this after commits (it is cheap when nothing is queued).
    /// Events sealed between a lag marker and the resynchronization
    /// are covered by the snapshot replicas recover through, never
    /// re-broadcast.
    pub fn pump(&mut self, db: &Database) -> usize {
        let events = match &self.sub {
            Some(sub) => sub.drain(),
            None => return 0,
        };
        if events.is_empty() {
            return 0;
        }
        let mut hub = self.state.lock().unwrap();
        let drained = events.len();
        for event in events {
            match &event {
                FeedEvent::Delta(ev) => {
                    if ev.seq <= hub.seq {
                        // Already absorbed by a lag resync below.
                        continue;
                    }
                    assert_eq!(ev.seq, hub.seq + 1, "subscription feeds are gapless");
                    ev.delta.replay(&mut hub.mirror);
                    hub.seq = ev.seq;
                    let payload = encode_event(&event);
                    hub.retained.push_back((ev.seq, payload.clone()));
                    while hub.retained.len() > hub.retain {
                        hub.retained.pop_front();
                    }
                    broadcast(&mut hub.clients, &payload);
                }
                FeedEvent::Lagged(_) => {
                    let payload = encode_event(&event);
                    broadcast(&mut hub.clients, &payload);
                    hub.retained.clear();
                    hub.mirror = db.store(self.view).clone();
                    hub.seq = db.last_seq();
                }
            }
        }
        drained
    }

    /// Stops the accept thread, closes every client connection and
    /// returns the subscription for [`Database::unsubscribe`].
    pub fn close(mut self, db: &mut Database) {
        self.stop();
        if let Some(sub) = self.sub.take() {
            db.unsubscribe(sub);
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.state.lock().unwrap().clients.clear();
    }
}

impl Drop for FeedServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Writes one framed event to every client, pruning the dead.
fn broadcast(clients: &mut Vec<TcpStream>, payload: &[u8]) {
    clients.retain_mut(|c| wire::write_frame(c, FrameKind::Event, payload).is_ok());
}

fn accept_loop(listener: TcpListener, state: &Mutex<Hub>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // A failed handshake only costs this one connection.
                let _ = handshake(stream, state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Runs one client's handshake and, on success, registers it for
/// broadcasts. The catch-up decision and the registration happen
/// under one lock acquisition so no broadcast can interleave.
fn handshake(mut stream: TcpStream, state: &Mutex<Hub>) -> Result<(), FeedError> {
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    wire::write_stream_header(&mut stream)?;
    wire::read_stream_header(&mut stream)?;
    let (kind, payload) = wire::read_frame(&mut stream)?;
    if kind != FrameKind::Hello {
        return Err(FeedError::Protocol(format!("expected hello, got {kind:?}")));
    }
    let (has_state, high_water, view) = wire::parse_hello(&payload)?;

    let mut hub = state.lock().unwrap();
    if view != hub.view_name {
        let reason = format!("view {view:?} is not served here (serving {:?})", hub.view_name);
        let _ = wire::write_frame(&mut stream, FrameKind::Deny, reason.as_bytes());
        return Ok(());
    }
    let replayable = has_state
        && high_water <= hub.seq
        && (high_water == hub.seq
            || hub.retained.front().is_some_and(|(first, _)| *first <= high_water + 1));
    if replayable {
        for (seq, frame) in hub.retained.iter() {
            if *seq > high_water {
                wire::write_frame(&mut stream, FrameKind::Event, frame)?;
            }
        }
    } else {
        // Fresh client, or the gap outruns the retained window (or
        // the client claims a future the server never sealed — a
        // different server generation): replace its state wholesale.
        let image = wire::snapshot_payload(hub.seq, &encode_store(&hub.mirror));
        wire::write_frame(&mut stream, FrameKind::Snapshot, &image)?;
    }
    stream.set_read_timeout(None)?;
    stream.flush()?;
    hub.clients.push(stream);
    Ok(())
}
