//! Interned node labels.
//!
//! Element tags, attribute names (stored with a leading `@`) and the
//! pseudo-label for text nodes are interned into dense [`LabelId`]s so
//! canonical relations, Dewey steps and pattern nodes can compare labels
//! with a single integer comparison.

use std::collections::HashMap;

/// Pseudo-label under which all text nodes are registered.
pub const TEXT_LABEL: &str = "#text";

/// A dense identifier for an interned label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

impl LabelId {
    /// Raw index, usable to address side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional label ↔ id mapping.
///
/// Interners are append-only: ids are stable for the lifetime of the
/// owning document, which is what keeps Dewey steps self-describing.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: HashMap<String, LabelId>,
}

impl LabelInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id when already present.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned label.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.ids.get(name).copied()
    }

    /// The textual name of `id`.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (LabelId(i as u32), n.as_str()))
    }
}

/// Conventional interned spelling of an attribute named `name`.
pub fn attribute_label(name: &str) -> String {
    format!("@{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut li = LabelInterner::new();
        let a = li.intern("a");
        let b = li.intern("b");
        assert_ne!(a, b);
        assert_eq!(li.intern("a"), a);
        assert_eq!(li.len(), 2);
    }

    #[test]
    fn name_roundtrip() {
        let mut li = LabelInterner::new();
        let id = li.intern("open_auction");
        assert_eq!(li.name(id), "open_auction");
        assert_eq!(li.get("open_auction"), Some(id));
        assert_eq!(li.get("missing"), None);
    }

    #[test]
    fn attribute_labels_are_prefixed() {
        assert_eq!(attribute_label("id"), "@id");
    }

    #[test]
    fn iter_yields_in_order() {
        let mut li = LabelInterner::new();
        li.intern("x");
        li.intern("y");
        let names: Vec<_> = li.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
