//! Figures 26 and 27: incremental maintenance vs. full recomputation
//! for the XMark views Q1, Q2 and Q4 and their update classes —
//! insertions (Figure 26) and deletions (Figure 27).
//!
//! Expected shape: full recomputation is prohibitive in most
//! scenarios; incremental maintenance wins, and by more on deletions.

use std::time::Instant;
use xivm_bench::{averaged, figure_header, ms, repetitions, row};
use xivm_core::SnowcapStrategy;
use xivm_ivma::recompute_store;
use xivm_update::{apply_pul, compute_pul};
use xivm_xmark::sizes::reference_size;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern};

fn main() {
    let size = reference_size();
    let doc = generate_sized(size.bytes);
    let reps = repetitions();
    for (figure, is_insert) in [("Figure 26", true), ("Figure 27", false)] {
        let algo = if is_insert { "PINT/PIMT" } else { "PDDT/PDMT" };
        figure_header(
            figure,
            &format!("{algo} versus full re-computation, {} document", size.label),
        );
        row(&[
            "pair".to_owned(),
            "incremental_ms".to_owned(),
            "full_recompute_ms".to_owned(),
            "speedup".to_owned(),
        ]);
        for view in ["Q1", "Q2", "Q4"] {
            let pattern = view_pattern(view);
            // the catalog pairs plus a low-selectivity variant: the
            // paper's updates touch large document fractions, where
            // incremental and full costs converge by necessity; the
            // narrow variant shows the incremental win when the
            // update's footprint is small relative to the document
            let narrow = narrow_update(view, is_insert);
            let stmts = updates_for_view(view)
                .iter()
                .map(|u| {
                    (u.name.to_owned(), if is_insert { u.insert_stmt() } else { u.delete_stmt() })
                })
                .chain(std::iter::once(narrow))
                .collect::<Vec<_>>();
            for (uname, stmt) in stmts {
                // incremental
                let inc = averaged(reps, || {
                    xivm_bench::run_once(&doc, &pattern, &stmt, SnowcapStrategy::MinimalChain)
                        .timings
                });
                let inc_ms = ms(inc.maintenance_total());
                // full recomputation: apply the update, then evaluate
                // the view from scratch (target finding included, as
                // it is part of applying the update either way)
                let mut full_ms = 0.0;
                for _ in 0..reps {
                    let mut d = doc.clone();
                    let pul = compute_pul(&d, &stmt);
                    apply_pul(&mut d, &pul).expect("update applies");
                    let start = Instant::now();
                    let store = recompute_store(&d, &pattern);
                    full_ms += ms(start.elapsed());
                    std::hint::black_box(store.len());
                }
                full_ms /= reps as f64;
                row(&[
                    format!("{view}_{uname}"),
                    format!("{inc_ms:.3}"),
                    format!("{full_ms:.3}"),
                    format!("{:.2}", full_ms / inc_ms.max(1e-6)),
                ]);
            }
        }
    }
}

/// A low-selectivity update for each view's subject area: one person
/// (or one auction's bidders) instead of all of them.
fn narrow_update(view: &str, is_insert: bool) -> (String, xivm_update::UpdateStatement) {
    use xivm_update::UpdateStatement;
    let path = match view {
        "Q1" => "/site/people/person[@id=\"person3\"]",
        _ => "/site/open_auctions/open_auction[@id=\"open_auction3\"]/bidder",
    };
    let stmt = if is_insert {
        UpdateStatement::insert(path, "<name>narrow<name>x</name></name>").unwrap()
    } else {
        UpdateStatement::delete(path).unwrap()
    };
    ("narrow".to_owned(), stmt)
}
