//! Changefeed: consume a view as a stream of deltas instead of
//! re-reading it.
//!
//! A [`Database`] computes per-view deltas on every commit (that is
//! the paper's whole point) and, since the delta-first API, hands them
//! to the caller: `subscribe` turns one view into a feed of
//! [`DeltaEvent`]s — commit sequence number plus the view's exact
//! [`ViewDelta`] — and a downstream consumer maintains its own replica
//! in O(|Δ|) per commit, never cloning the store.
//!
//! ```sh
//! cargo run --release --example changefeed
//! ```

use xivm::prelude::*;
use xivm::update::builder::{delete, element, insert, replace};

fn main() -> Result<(), Error> {
    // An order book: one document, one view a downstream consumer
    // (index, cache, dashboard) mirrors.
    let mut db = Database::builder()
        .document(
            "<shop>\
               <orders>\
                 <order><sku>tea</sku></order>\
               </orders>\
               <audit/>\
             </shop>",
        )
        .view("skus", "//order{id}/sku{id,val}")
        .build()?;
    let skus = db.view("skus")?;

    // The consumer's replica starts as a snapshot of the view...
    let mut replica = db.store(skus).clone();
    // ...and from here on only deltas flow.
    let feed = db.subscribe(skus);

    // Business as usual, with typed statements: orders arrive, the
    // tea order is swapped for mate, spam is purged, and unrelated
    // subtrees churn without touching the view.
    db.apply(insert(element("order").child(element("sku").text("coffee"))).into("//orders"))?;
    db.apply(insert(element("entry").text("day 1")).into("//audit"))?; // does not touch the view
    db.transaction()
        .statement(insert(element("order").child(element("sku").text("spam"))).into("//orders"))
        .statement(insert(element("order").child(element("sku").text("cocoa"))).into("//orders"))
        .commit()?;
    db.apply(
        replace(r#"//order[sku = "tea"]"#)
            .with(element("order").child(element("sku").text("mate"))),
    )?;
    db.apply(delete(r#"//order[sku = "spam"]"#))?;
    db.apply(insert(element("order").child(element("sku").text("juice"))).into("//orders"))?;

    // The consumer catches up whenever it likes. Each delta is also a
    // stream of weighted changes (insert +count, delete −count, modify
    // 0), so one pass over `weights()` replaces hand-matching the
    // three-way insert/remove/modify split.
    let events = db.drain(&feed);
    println!("drained {} events (one per commit, gapless):", events.len());
    let mut expected_seq = 0;
    for event in &events {
        expected_seq += 1;
        assert_eq!(event.seq, expected_seq, "sequence numbers are gapless");
        let (mut added, mut dropped, mut patched) = (0i64, 0i64, 0usize);
        for (weight, change) in event.delta.weights() {
            match change {
                WeightedChange::Modify { .. } => patched += 1,
                WeightedChange::Insert { .. } => added += weight,
                WeightedChange::Remove { .. } => dropped -= weight,
            }
        }
        let net: i64 = event.delta.weights().map(|(weight, _)| weight).sum();
        println!(
            "  commit #{}: net weight {:+} ({} derivations in, {} out, {} patched){}",
            event.seq,
            net,
            added,
            dropped,
            patched,
            if event.delta.is_empty() { "  (did not touch the view)" } else { "" },
        );
        event.delta.replay(&mut replica);
    }

    // Replaying the deltas reproduced the store exactly — same keys,
    // same derivation counts, same stored text: coffee, cocoa, mate
    // and juice survive; tea was replaced, spam purged.
    assert!(replica.identical_to(db.store(skus)), "replica drifted from the view");
    assert_eq!(db.store(skus).len(), 4);
    println!("\nreplica is identical to the live view after replay:");
    for (tuple, count) in db.cursor(skus) {
        let sku = tuple.field(1).val.as_deref().unwrap_or("?");
        println!("  sku {sku:<8} x{count}");
    }
    println!("({} tuples, last commit seq {})", db.store(skus).len(), db.last_seq());
    Ok(())
}
