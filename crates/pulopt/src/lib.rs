//! Optimizing the propagation of XML update sequences (Section 5).
//!
//! Re-implements, for the two fundamental operations `ins↘(v, P)` and
//! `del(v)` (Section 5.2), the rule set of Cavalieri et al. \[2011\]:
//!
//! * **Reduction rules** ([`mod@reduce`]): O1, O3 and I5 (Figure 14) —
//!   simplify one PUL by dropping operations made useless by later
//!   deletions and merging repeated insertions;
//! * **Conflict rules** ([`conflict`]): IO, LO and NLO (Figure 15) —
//!   detect order-dependence between two PULs to be run in parallel,
//!   with pluggable resolution policies;
//! * **Partitioning** ([`partition`]): the Figure 15 rules lifted to
//!   sets of PULs and to per-view op projections of one shared PUL —
//!   the grouping the parallel propagation scheduler and the sharding
//!   direction both use;
//! * **Aggregation rules** ([`mod@aggregate`]): A1, A2 and D6 (Figure 16)
//!   — merge two PULs to be run sequentially into one.
//!
//! The optimized PUL is then handed to the maintenance engine instead
//! of the original (Figure 13's CP → OR → PINT/PDDT pipeline).

pub mod aggregate;
pub mod conflict;
pub mod partition;
pub mod reduce;

pub use aggregate::{aggregate, AggregationOutcome};
pub use conflict::{
    find_conflicts, integrate, op_conflict, Conflict, ConflictKind, ConflictPolicy,
};
pub use partition::{
    internal_conflict_pairs, partition_by, partition_projections, partition_puls,
    projections_conflict,
};
pub use reduce::{reduce, ReductionTrace};
