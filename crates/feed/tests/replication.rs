//! End-to-end replication over localhost sockets: byte-identity
//! after every commit, resume-after-disconnect through both the
//! retained window and the snapshot fallback, lag recovery, and
//! deferred-view refresh events folding atomically on the replica.

use xivm_core::database::{Database, MaintenanceMode};
use xivm_core::snapshot::encode_store;
use xivm_core::SlowConsumerPolicy;
use xivm_feed::{FeedError, FeedServer, ReplicaClient};

const DOC: &str = "<a><c><b/><b/></c><f><c><b/></c><b/></f></a>";

fn db() -> Database {
    Database::builder()
        .document(DOC)
        .view("ab", "//a{id}//b{id}")
        .view("acb", "//a{id}[//c{id}]//b{id}")
        .build()
        .unwrap()
}

/// A little script of statements that grows and shrinks both views.
fn script(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match i % 4 {
            0 => "insert <b/> into /a/c".to_owned(),
            1 => "insert <c><b/></c> into /a/f".to_owned(),
            2 => "delete /a/f/c/b".to_owned(),
            _ => "insert <b>x</b> into /a".to_owned(),
        })
        .collect()
}

#[test]
fn replica_is_byte_identical_after_every_commit() {
    let mut db = db();
    let ab = db.view("ab").unwrap();
    let mut server = FeedServer::bind("127.0.0.1:0", &mut db, ab, 64).unwrap();
    let mut replica = ReplicaClient::connect(server.local_addr(), "ab").unwrap();

    for stmt in script(12) {
        db.apply(stmt.as_str()).unwrap();
        server.pump(&db);
        replica.sync_to(db.last_seq()).unwrap();
        assert!(replica.identical_to(db.store(ab)), "replica diverged at seq {}", db.last_seq());
        assert_eq!(replica.seq(), db.last_seq());
    }
    server.close(&mut db);
}

#[test]
fn multiple_replicas_converge() {
    let mut db = db();
    let acb = db.view("acb").unwrap();
    let mut server = FeedServer::bind("127.0.0.1:0", &mut db, acb, 64).unwrap();
    let mut replicas: Vec<ReplicaClient> =
        (0..3).map(|_| ReplicaClient::connect(server.local_addr(), "acb").unwrap()).collect();

    for stmt in script(8) {
        db.apply(stmt.as_str()).unwrap();
    }
    server.pump(&db);
    for replica in &mut replicas {
        replica.sync_to(db.last_seq()).unwrap();
        assert!(replica.identical_to(db.store(acb)));
    }
}

#[test]
fn kill_and_resume_through_retained_window() {
    let mut db = db();
    let ab = db.view("ab").unwrap();
    let mut server = FeedServer::bind("127.0.0.1:0", &mut db, ab, 1024).unwrap();
    let mut replica = ReplicaClient::connect(server.local_addr(), "ab").unwrap();

    db.apply("insert <b/> into /a/c").unwrap();
    server.pump(&db);
    replica.sync_to(db.last_seq()).unwrap();

    // Crash mid-stream: the next commits are broadcast into a dead
    // socket; the server prunes the connection on write failure.
    replica.kill();
    for stmt in script(6) {
        db.apply(stmt.as_str()).unwrap();
        server.pump(&db);
    }
    assert!(replica.sync_to(db.last_seq()).is_err(), "severed socket must error, not hang");

    // Resume with the high-water mark: the gap (6 events) is inside
    // the retained window, so catch-up is replay, not a snapshot.
    replica.reconnect().unwrap();
    replica.sync_to(db.last_seq()).unwrap();
    assert!(replica.identical_to(db.store(ab)));
}

#[test]
fn resume_falls_back_to_snapshot_when_window_is_outrun() {
    let mut db = db();
    let ab = db.view("ab").unwrap();
    // Retain only 2 events: a replica 8 behind cannot be replayed.
    let mut server = FeedServer::bind("127.0.0.1:0", &mut db, ab, 2).unwrap();
    let mut replica = ReplicaClient::connect(server.local_addr(), "ab").unwrap();
    replica.sync_to(0).unwrap();
    replica.kill();

    for stmt in script(8) {
        db.apply(stmt.as_str()).unwrap();
        server.pump(&db);
    }
    replica.reconnect().unwrap();
    replica.sync_to(db.last_seq()).unwrap();
    assert!(replica.identical_to(db.store(ab)));
    assert_eq!(replica.seq(), db.last_seq());
}

#[test]
fn cold_resume_reconstructs_from_persisted_state() {
    let mut db = db();
    let ab = db.view("ab").unwrap();
    let mut server = FeedServer::bind("127.0.0.1:0", &mut db, ab, 64).unwrap();
    let mut replica = ReplicaClient::connect(server.local_addr(), "ab").unwrap();
    db.apply("insert <b/> into /a/c").unwrap();
    server.pump(&db);
    replica.sync_to(db.last_seq()).unwrap();

    // "Persist" the replica, lose the process, come back later.
    let persisted_store = replica.store().unwrap().clone();
    let persisted_seq = replica.seq();
    drop(replica);
    for stmt in script(4) {
        db.apply(stmt.as_str()).unwrap();
        server.pump(&db);
    }

    let mut revived =
        ReplicaClient::resume(server.local_addr(), "ab", persisted_store, persisted_seq).unwrap();
    revived.sync_to(db.last_seq()).unwrap();
    assert!(revived.identical_to(db.store(ab)));
}

#[test]
fn unknown_view_is_denied() {
    let mut db = db();
    let ab = db.view("ab").unwrap();
    let server = FeedServer::bind("127.0.0.1:0", &mut db, ab, 64).unwrap();
    let mut replica = ReplicaClient::connect(server.local_addr(), "nope").unwrap();
    match replica.sync_to(0) {
        Err(FeedError::Denied(reason)) => assert!(reason.contains("nope"), "{reason}"),
        other => panic!("expected deny, got {other:?}"),
    }
}

#[test]
fn lagged_server_subscription_recovers_replicas_via_snapshot() {
    let mut db = db();
    let ab = db.view("ab").unwrap();
    // The server's own subscription holds 1 event and drops with a
    // marker: pumping after several commits guarantees a lag.
    let mut server = FeedServer::bind_with(
        "127.0.0.1:0",
        &mut db,
        ab,
        64,
        Some(1),
        SlowConsumerPolicy::DropAndMark,
    )
    .unwrap();
    let mut replica = ReplicaClient::connect(server.local_addr(), "ab").unwrap();
    replica.sync_to(0).unwrap();

    for stmt in script(6) {
        db.apply(stmt.as_str()).unwrap();
    }
    server.pump(&db);
    replica.sync_to(db.last_seq()).unwrap();
    assert!(replica.identical_to(db.store(ab)), "lag recovery must converge");
    assert!(replica.reconnects() > 0, "recovery goes through a reconnect");
}

#[test]
fn deferred_view_replicates_through_coalesced_refresh_events() {
    let mut db = Database::builder()
        .document(DOC)
        .view("ab", "//a{id}//b{id}")
        .view_deferred("acb", "//a{id}[//c{id}]//b{id}")
        .build()
        .unwrap();
    let acb = db.view("acb").unwrap();
    assert_eq!(db.maintenance(acb), MaintenanceMode::Deferred);
    let mut server = FeedServer::bind("127.0.0.1:0", &mut db, acb, 64).unwrap();
    let mut replica = ReplicaClient::connect(server.local_addr(), "acb").unwrap();

    // Deferred commits leave the store (and thus the replica)
    // untouched; their events carry empty deltas.
    for stmt in script(5) {
        db.apply(stmt.as_str()).unwrap();
        server.pump(&db);
        replica.sync_to(db.last_seq()).unwrap();
        assert!(replica.identical_to(db.store(acb)), "deferred: store must not move");
    }

    // The refresh seals its own commit; its single event folds the
    // whole batch and the replica lands byte-identical.
    let refresh = db.refresh(acb).unwrap().expect("batch pending");
    assert_eq!(refresh.seq, db.last_seq());
    server.pump(&db);
    replica.sync_to(db.last_seq()).unwrap();
    assert!(replica.identical_to(db.store(acb)));

    // And the refreshed store equals an immediate-mode database's.
    let mut immediate = db2_immediate();
    for stmt in script(5) {
        immediate.apply(stmt.as_str()).unwrap();
    }
    let acb2 = immediate.view("acb").unwrap();
    assert_eq!(encode_store(db.store(acb)), encode_store(immediate.store(acb2)));
}

fn db2_immediate() -> Database {
    Database::builder()
        .document(DOC)
        .view("ab", "//a{id}//b{id}")
        .view("acb", "//a{id}[//c{id}]//b{id}")
        .build()
        .unwrap()
}

#[test]
fn async_commits_replicate_identically() {
    let mut db = Database::builder()
        .document(DOC)
        .view("ab", "//a{id}//b{id}")
        .view("acb", "//a{id}[//c{id}]//b{id}")
        .workers(2)
        .pipeline(4)
        .build()
        .unwrap();
    let ab = db.view("ab").unwrap();
    let mut server = FeedServer::bind("127.0.0.1:0", &mut db, ab, 256).unwrap();
    let mut replica = ReplicaClient::connect(server.local_addr(), "ab").unwrap();

    for stmt in script(10) {
        db.apply_async([stmt.as_str()]).unwrap();
    }
    db.flush().unwrap();
    server.pump(&db);
    replica.sync_to(db.last_seq()).unwrap();
    assert!(replica.identical_to(db.store(ab)));
}
