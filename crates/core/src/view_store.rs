//! The materialized view store: projected tuples with derivation
//! counts (Section 2.2).

use std::collections::HashMap;
use xivm_algebra::{Schema, Tuple};
use xivm_pattern::compile::view_schema;
use xivm_pattern::TreePattern;
use xivm_xml::DeweyId;

/// Key of a view tuple: the structural IDs of its stored nodes.
pub type TupleKey = Vec<DeweyId>;

/// A materialized view: tuples over the stored (annotated) columns,
/// each carrying its derivation count — "the number of reasons why the
/// tuple belongs to the view".
#[derive(Debug, Clone, Default)]
pub struct ViewStore {
    schema: Schema,
    tuples: HashMap<TupleKey, (Tuple, u64)>,
}

impl ViewStore {
    /// An empty store with the view's projected schema.
    pub fn new(pattern: &TreePattern) -> Self {
        ViewStore { schema: view_schema(pattern), tuples: HashMap::new() }
    }

    /// An empty store over an explicit schema (snapshot decoding).
    pub fn from_schema(schema: Schema) -> Self {
        ViewStore { schema, tuples: HashMap::new() }
    }

    /// Builds a store from already-counted tuples (initial
    /// materialization or full recomputation).
    pub fn from_counted(pattern: &TreePattern, counted: Vec<(Tuple, u64)>) -> Self {
        let mut s = ViewStore::new(pattern);
        for (t, c) in counted {
            s.add(t, c);
        }
        s
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Sum of derivation counts (number of underlying embeddings).
    pub fn total_derivations(&self) -> u64 {
        self.tuples.values().map(|(_, c)| c).sum()
    }

    pub fn count_of(&self, key: &TupleKey) -> Option<u64> {
        self.tuples.get(key).map(|(_, c)| *c)
    }

    pub fn contains(&self, key: &TupleKey) -> bool {
        self.tuples.contains_key(key)
    }

    /// Adds `count` derivations of a tuple (ET-INS's final step: an
    /// existing tuple's count grows, a new tuple enters with its
    /// count).
    pub fn add(&mut self, tuple: Tuple, count: u64) {
        debug_assert_eq!(tuple.arity(), self.schema.arity());
        let key = tuple.id_key();
        self.tuples.entry(key).and_modify(|(_, c)| *c += count).or_insert((tuple, count));
    }

    /// Removes `count` derivations; the tuple disappears when its
    /// derivation count reaches zero (Algorithm 5's final loop).
    /// Returns true when the tuple was removed entirely.
    pub fn remove_derivations(&mut self, key: &TupleKey, count: u64) -> bool {
        match self.tuples.get_mut(key) {
            None => false,
            Some((_, c)) => {
                *c = c.saturating_sub(count);
                if *c == 0 {
                    self.tuples.remove(key);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Mutable access for PIMT / PDMT val-and-cont patching.
    pub fn tuple_mut(&mut self, key: &TupleKey) -> Option<&mut Tuple> {
        self.tuples.get_mut(key).map(|(t, _)| t)
    }

    /// The stored tuple behind a key, if present.
    pub fn tuple(&self, key: &TupleKey) -> Option<&Tuple> {
        self.tuples.get(key).map(|(t, _)| t)
    }

    /// The stored tuple *and* its derivation count behind a key — one
    /// lookup where [`Self::tuple`] + [`Self::count_of`] would pay two.
    pub fn get(&self, key: &TupleKey) -> Option<(&Tuple, u64)> {
        self.tuples.get(key).map(|(t, c)| (t, *c))
    }

    /// All current keys (snapshot, so the store can be mutated while
    /// iterating). Prefer [`Self::iter`] / [`Self::tuples_mut`] when
    /// no structural mutation happens mid-walk — they borrow instead
    /// of cloning every key.
    pub fn keys(&self) -> Vec<TupleKey> {
        self.tuples.keys().cloned().collect()
    }

    /// Borrowing iterator over the stored tuples and their derivation
    /// counts, in arbitrary order. Allocation-free.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.tuples.values().map(|(t, c)| (t, *c))
    }

    /// Borrowing mutable walk over the stored tuples (key + tuple),
    /// for in-place `val` / `cont` patching (PIMT / PDMT). Derivation
    /// counts and keys stay fixed — only tuple fields may change.
    pub fn tuples_mut(&mut self) -> impl Iterator<Item = (&TupleKey, &mut Tuple)> {
        self.tuples.iter_mut().map(|(k, (t, _))| (k, t))
    }

    /// Borrowing cursor over the tuples in document order — the
    /// canonical external representation (`e_v` ends with a sort)
    /// without cloning a single tuple. One `Vec` of references is
    /// allocated for the sort; the yielded tuples are borrows.
    pub fn cursor(&self) -> Cursor<'_> {
        let mut refs: Vec<(&Tuple, u64)> = self.iter().collect();
        refs.sort_by(|a, b| doc_order(a.0, b.0));
        Cursor { inner: refs.into_iter() }
    }

    /// Tuples with counts, sorted by document order — the owning
    /// (cloning) form of [`Self::cursor`], kept for callers that need
    /// the data to outlive the store borrow.
    pub fn sorted_tuples(&self) -> Vec<(Tuple, u64)> {
        self.cursor().map(|(t, c)| (t.clone(), c)).collect()
    }

    /// Compares content (keys and counts) with another store — the
    /// test oracle for "incremental == recomputed".
    pub fn same_content_as(&self, other: &ViewStore) -> bool {
        self.tuples.len() == other.tuples.len()
            && self
                .tuples
                .iter()
                .all(|(k, (_, c))| other.tuples.get(k).is_some_and(|(_, oc)| oc == c))
    }

    /// Strict equality: keys, derivation counts *and* every stored
    /// `val` / `cont` field must match. The oracle for "snapshot plus
    /// replayed deltas reproduces the post-commit store exactly".
    pub fn identical_to(&self, other: &ViewStore) -> bool {
        self.tuples.len() == other.tuples.len()
            && self
                .tuples
                .iter()
                .all(|(k, (t, c))| other.tuples.get(k).is_some_and(|(ot, oc)| oc == c && ot == t))
    }

    /// Detailed difference description for test failures.
    pub fn diff_description(&self, other: &ViewStore) -> String {
        let mut out = String::new();
        for (k, (_, c)) in &self.tuples {
            match other.tuples.get(k) {
                None => out.push_str(&format!("only in left (count {c}): {k:?}\n")),
                Some((_, oc)) if oc != c => {
                    out.push_str(&format!("count mismatch {c} vs {oc}: {k:?}\n"))
                }
                _ => {}
            }
        }
        for (k, (_, c)) in &other.tuples {
            if !self.tuples.contains_key(k) {
                out.push_str(&format!("only in right (count {c}): {k:?}\n"));
            }
        }
        out
    }
}

/// Document-order comparison of two same-arity tuples by their ID
/// columns (shared with delta canonicalization in `crate::commit`).
pub(crate) fn doc_order(a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
    for i in 0..a.arity() {
        let c = a.field(i).id.doc_cmp(&b.field(i).id);
        if c.is_ne() {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

/// Borrowing document-order iterator over a [`ViewStore`] — see
/// [`ViewStore::cursor`].
pub struct Cursor<'a> {
    inner: std::vec::IntoIter<(&'a Tuple, u64)>,
}

impl<'a> Iterator for Cursor<'a> {
    type Item = (&'a Tuple, u64);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Cursor<'_> {}

/// View stores grouped into write-disjoint shards.
///
/// The shard assignment *is* the Figure 15 partition
/// ([`crate::multiview::MultiViewEngine::partition`], built on
/// [`xivm_pulopt::partition`]): views whose PUL projections contain
/// two distinct order-dependent operations land in the same shard,
/// every other pair may be split. During a pipelined window each shard
/// is finished by exactly one worker job, so parallel `finish` jobs
/// write disjoint shards with no synchronization beyond job
/// completion — the stores themselves carry no locks.
///
/// Built by [`Database::sharded_stores`]; the store `Arc`s are the
/// live ones at capture time, so constructing the sharding is
/// O(views).
///
/// [`Database::sharded_stores`]: crate::database::DbInner::sharded_stores
pub struct ShardedStores {
    /// Per shard: `(declaration-order index, name, store)` triples,
    /// shards ordered by smallest member, members ascending (the
    /// partition's canonical order).
    shards: Vec<Vec<(usize, String, std::sync::Arc<ViewStore>)>>,
}

impl ShardedStores {
    /// Groups the given stores (declaration order) by the given
    /// partition. Every view index in `groups` must be in range.
    pub(crate) fn new(
        groups: Vec<Vec<usize>>,
        stores: Vec<(String, std::sync::Arc<ViewStore>)>,
    ) -> Self {
        let mut slots: Vec<Option<(String, std::sync::Arc<ViewStore>)>> =
            stores.into_iter().map(Some).collect();
        let shards = groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&i| {
                        let (name, store) = slots[i].take().expect("view in exactly one shard");
                        (i, name, store)
                    })
                    .collect()
            })
            .collect();
        ShardedStores { shards }
    }

    /// Number of shards (= conflict groups). 1 means the update is so
    /// entangled that no two views may be split; `len == views` means
    /// fully parallel.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The views of one shard: `(declaration-order index, name,
    /// store)` triples.
    pub fn shard(&self, i: usize) -> impl Iterator<Item = (usize, &str, &ViewStore)> {
        self.shards[i].iter().map(|(idx, n, s)| (*idx, n.as_str(), &**s))
    }

    /// Which shard a view (by declaration-order index) lives on.
    pub fn shard_of(&self, view: usize) -> Option<usize> {
        self.shards.iter().position(|g| g.iter().any(|(i, _, _)| *i == view))
    }

    /// All stores flattened back to declaration order — the identity
    /// check that sharding loses nothing.
    pub fn unsharded(&self) -> Vec<(&str, &ViewStore)> {
        let mut all: Vec<(usize, &str, &ViewStore)> =
            self.shards.iter().flatten().map(|(i, n, s)| (*i, n.as_str(), &**s)).collect();
        all.sort_by_key(|(i, _, _)| *i);
        all.into_iter().map(|(_, n, s)| (n, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_algebra::Field;
    use xivm_pattern::parse_pattern;
    use xivm_xml::{dewey::Step, LabelId};

    fn tup(ord: u64) -> Tuple {
        Tuple::new(vec![Field::id_only(DeweyId::from_steps(vec![Step::new(LabelId(0), ord)]))])
    }

    fn store() -> ViewStore {
        ViewStore::new(&parse_pattern("//a{id}").unwrap())
    }

    #[test]
    fn add_accumulates_counts() {
        let mut s = store();
        s.add(tup(1), 2);
        s.add(tup(1), 3);
        s.add(tup(2), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.count_of(&tup(1).id_key()), Some(5));
        assert_eq!(s.total_derivations(), 6);
    }

    #[test]
    fn get_returns_tuple_and_count_together() {
        let mut s = store();
        s.add(tup(1), 2);
        let (t, c) = s.get(&tup(1).id_key()).unwrap();
        assert_eq!(t, &tup(1));
        assert_eq!(c, 2);
        assert!(s.get(&tup(9).id_key()).is_none());
    }

    #[test]
    fn remove_derivations_until_zero() {
        let mut s = store();
        s.add(tup(1), 2);
        assert!(!s.remove_derivations(&tup(1).id_key(), 1));
        assert_eq!(s.count_of(&tup(1).id_key()), Some(1));
        assert!(s.remove_derivations(&tup(1).id_key(), 1));
        assert!(!s.contains(&tup(1).id_key()));
        // removing a missing tuple is a no-op
        assert!(!s.remove_derivations(&tup(9).id_key(), 4));
    }

    #[test]
    fn sorted_tuples_in_doc_order() {
        let mut s = store();
        s.add(tup(5), 1);
        s.add(tup(1), 1);
        s.add(tup(3), 1);
        let ords: Vec<u64> =
            s.sorted_tuples().iter().map(|(t, _)| t.field(0).id.steps()[0].ord).collect();
        assert_eq!(ords, vec![1, 3, 5]);
    }

    #[test]
    fn cursor_borrows_in_doc_order_and_matches_sorted_tuples() {
        let mut s = store();
        s.add(tup(5), 1);
        s.add(tup(1), 2);
        s.add(tup(3), 1);
        let cursor_ords: Vec<(u64, u64)> =
            s.cursor().map(|(t, c)| (t.field(0).id.steps()[0].ord, c)).collect();
        assert_eq!(cursor_ords, vec![(1, 2), (3, 1), (5, 1)]);
        let cloned: Vec<(u64, u64)> =
            s.sorted_tuples().iter().map(|(t, c)| (t.field(0).id.steps()[0].ord, *c)).collect();
        assert_eq!(cursor_ords, cloned);
        assert_eq!(s.cursor().len(), 3);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn tuples_mut_patches_fields_in_place() {
        let mut s = store();
        s.add(tup(1), 1);
        for (_, t) in s.tuples_mut() {
            t.field_mut(0).val = Some("patched".into());
        }
        let key = tup(1).id_key();
        assert_eq!(s.tuple(&key).unwrap().field(0).val.as_deref(), Some("patched"));
        assert!(s.tuple(&tup(9).id_key()).is_none());
    }

    #[test]
    fn identical_to_sees_field_differences_content_comparison_ignores() {
        let mut a = store();
        let mut b = store();
        a.add(tup(1), 1);
        b.add(tup(1), 1);
        assert!(a.identical_to(&b));
        for (_, t) in b.tuples_mut() {
            t.field_mut(0).val = Some("changed".into());
        }
        assert!(a.same_content_as(&b), "keys and counts still agree");
        assert!(!a.identical_to(&b), "but the stored fields differ");
    }

    #[test]
    fn content_comparison() {
        let mut a = store();
        let mut b = store();
        a.add(tup(1), 2);
        b.add(tup(1), 2);
        assert!(a.same_content_as(&b));
        b.add(tup(2), 1);
        assert!(!a.same_content_as(&b));
        assert!(b.diff_description(&a).contains("only in left"));
    }
}
