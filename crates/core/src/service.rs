//! The async commit service: submission decoupled from sealing.
//!
//! [`Database::apply_async`] validates a batch, reserves the next
//! sequence number and hands the statements to a background service
//! thread, returning a [`Ticket`] immediately. The service drains its
//! queue in submission order: runs of single-statement submissions go
//! through the same windowed copy-on-write pipeline as
//! [`apply_pipelined`] (up to the database's pipeline depth in
//! flight), multi-statement submissions commit like a sequential
//! transaction. Commits seal **strictly in sequence order**, so
//! subscription feeds stay gapless no matter how the work was
//! scheduled.
//!
//! The synchronous API stays safe through *quiescing*: `Database`
//! derefs to its core only after waiting for the service to go idle,
//! so a reader can never observe (and a writer can never interleave
//! with) a half-drained queue. The service thread itself is lazy —
//! spawned on the first `apply_async`, joined when the `Database`
//! drops (after draining what was queued) — so purely synchronous
//! databases never pay for it, and steady-state async traffic reuses
//! one thread plus the persistent [`Runtime`] pool.
//!
//! # Failure containment
//!
//! A submission can fail three ways, and each is pinned to a ticket:
//!
//! * an [`Error`] from the engine (e.g. a fallible document apply) —
//!   the failing ticket carries it;
//! * a **panic** mid-propagation (a worker died, or a
//!   `crate::fault` failpoint fired) — the service catches it,
//!   rolls the document back to the last *sealed* commit, replays the
//!   sealed prefix of the window, recomputes every view from scratch
//!   and seals nothing else from that window; the failing ticket
//!   carries [`Error::Panic`] with the panic message;
//! * an earlier submission in the queue failed — the reserved
//!   sequence number can no longer be honored, so the ticket aborts
//!   with [`Error::Aborted`] (resubmit for a fresh seq).
//!
//! After any failure the database is exactly the sequential replay of
//! the commits that actually sealed, and every surviving subscription
//! saw exactly those commits — `tests/fault_injection.rs` proves all
//! three properties under injected panics.
//!
//! [`Database::apply_async`]: crate::database::Database::apply_async
//! [`apply_pipelined`]: crate::database::DbInner::apply_pipelined
//! [`Runtime`]: crate::runtime::Runtime

use crate::commit::Commit;
use crate::database::{fold_pending, mark_deferred, merge_skip, seal_commit, DbInner};
use crate::error::Error;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use xivm_pulopt::ReductionTrace;
use xivm_update::{apply_pul, compute_pul, UpdateStatement};
use xivm_xml::Document;

/// A claim on one future commit, returned by
/// [`Database::apply_async`](crate::database::Database::apply_async)
/// as soon as the submission is validated and scheduled.
///
/// The ticket is independent of the database borrow: hold it, move it
/// to another thread, or drop it (the commit seals regardless).
#[derive(Debug)]
pub struct Ticket {
    /// The sequence number reserved for this submission. If the
    /// submission seals, its [`Commit::seq`] is exactly this value.
    /// If it fails or aborts, everything queued behind it aborts too
    /// and reservations restart from the last sealed commit — so the
    /// number may be reclaimed by a *later* submission, and the
    /// sealed commit stream itself stays gapless.
    pub seq: u64,
    inner: Arc<TicketInner>,
}

impl Ticket {
    /// Blocks until the submission seals or fails, returning the
    /// sealed [`Commit`] or the error that stopped it. Idempotent:
    /// the result is kept, so repeated waits return the same answer.
    pub fn wait(&self) -> Result<Commit, Error> {
        let mut slot = self.inner.result.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.inner.ready.wait(slot).unwrap();
        }
    }

    /// The result if the submission already sealed or failed, `None`
    /// while it is still queued or in flight. Never blocks.
    pub fn try_result(&self) -> Option<Result<Commit, Error>> {
        self.inner.result.lock().unwrap().clone()
    }
}

#[derive(Debug)]
struct TicketInner {
    result: Mutex<Option<Result<Commit, Error>>>,
    ready: Condvar,
}

impl TicketInner {
    fn new() -> Arc<Self> {
        Arc::new(TicketInner { result: Mutex::new(None), ready: Condvar::new() })
    }

    /// First write wins; later calls are ignored (a ticket resolves
    /// exactly once).
    fn fulfill(&self, result: Result<Commit, Error>) {
        let mut slot = self.result.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.ready.notify_all();
    }
}

/// One queued `apply_async` call: the pre-validated statements and
/// the ticket to resolve.
struct Submission {
    stmts: Vec<UpdateStatement>,
    ticket: Arc<TicketInner>,
}

struct State {
    queue: VecDeque<Submission>,
    /// True while the service thread is outside the lock draining a
    /// batch (the queue may be empty yet work is still in flight).
    busy: bool,
    shutdown: bool,
    /// Sealed high-water mark as last observed by the service thread.
    last_sealed: u64,
    /// Highest sequence number promised to a ticket. Re-synced from
    /// the database's commit counter whenever the service is idle, so
    /// interleaved synchronous commits are accounted for.
    reserved: u64,
    /// First background failure since the last `flush()`.
    first_error: Option<Error>,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work arrives or shutdown is requested.
    work: Condvar,
    /// Signalled when the service seals commits or goes idle.
    done: Condvar,
}

/// The `Database`-side handle: owns the lazily spawned service thread
/// and the queue it drains. Dropping the handle requests shutdown and
/// joins the thread (after it drains everything still queued) — the
/// `Database` stores it *before* the `DbInner` box precisely so this
/// join happens while the loaned core is still alive.
pub(crate) struct ServiceHandle {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

/// The raw loan of the database core the service thread works
/// through. The pointer targets the heap allocation behind
/// `Database::inner`, whose address is stable across moves of the
/// `Database` itself.
struct Loan(*mut DbInner);

// SAFETY: the loan crosses into the service thread, which dereferences
// it only while `state.busy` is true; every `&mut DbInner` the owning
// thread creates goes through the quiescing deref, which waits for
// `busy == false` and an empty queue under the same mutex. The two
// sides therefore never hold references simultaneously, and the
// mutex's ordering makes the hand-off a proper happens-before edge.
unsafe impl Send for Loan {}

impl ServiceHandle {
    pub(crate) fn new() -> Self {
        ServiceHandle {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    busy: false,
                    shutdown: false,
                    last_sealed: 0,
                    reserved: 0,
                    first_error: None,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            thread: None,
        }
    }

    /// Blocks until the service has nothing queued and nothing in
    /// flight. The guard behind every synchronous `Database` access.
    pub(crate) fn quiesce(&self) {
        if self.thread.is_none() {
            return;
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.busy || !st.queue.is_empty() {
            st = self.shared.done.wait(st).unwrap();
        }
    }

    /// Enqueues a pre-validated submission, reserving the next
    /// sequence number, and returns its ticket. Spawns the service
    /// thread on first use.
    pub(crate) fn submit(&mut self, db: *mut DbInner, stmts: Vec<UpdateStatement>) -> Ticket {
        if self.thread.is_none() {
            let loan = Loan(db);
            let shared = Arc::clone(&self.shared);
            self.thread = Some(
                std::thread::Builder::new()
                    .name("xivm-commit-service".into())
                    .spawn(move || service_loop(loan, shared))
                    .expect("spawn commit service thread"),
            );
        }
        let mut st = self.shared.state.lock().unwrap();
        if st.queue.is_empty() && !st.busy {
            // Idle: synchronous commits may have advanced the counter
            // since the last drain. SAFETY: the service thread is
            // parked on `work` under this same mutex, so reading the
            // core here cannot race its loan.
            let commits = unsafe { (*db).commits };
            st.reserved = commits;
            st.last_sealed = commits;
        }
        st.reserved += 1;
        let seq = st.reserved;
        let inner = TicketInner::new();
        st.queue.push_back(Submission { stmts, ticket: Arc::clone(&inner) });
        drop(st);
        self.shared.work.notify_all();
        Ticket { seq, inner }
    }

    /// Quiesces, then surfaces (and clears) the first background
    /// failure since the previous flush.
    pub(crate) fn flush(&mut self) -> Result<(), Error> {
        if self.thread.is_none() {
            return Ok(());
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.busy || !st.queue.is_empty() {
            st = self.shared.done.wait(st).unwrap();
        }
        match st.first_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Waits while commit `seq` is still promised but not yet sealed.
    /// Returns the service's sealed high-water mark, which is `0` if
    /// the service never ran (the caller falls back to the database's
    /// own counter).
    pub(crate) fn barrier(&self, seq: u64) -> u64 {
        if self.thread.is_none() {
            return 0;
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.last_sealed < seq && st.reserved >= seq {
            st = self.shared.done.wait(st).unwrap();
        }
        st.last_sealed
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if let Some(handle) = self.thread.take() {
            {
                let mut st = self.shared.state.lock().unwrap();
                st.shutdown = true;
            }
            self.shared.work.notify_all();
            let _ = handle.join();
        }
    }
}

fn service_loop(loan: Loan, shared: Arc<Shared>) {
    loop {
        let batch: Vec<Submission> = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
            st.busy = true;
            st.queue.drain(..).collect()
        };
        // SAFETY: `busy` is set, so the owning thread's quiescing
        // deref blocks until this borrow ends (see `Loan`).
        let db = unsafe { &mut *loan.0 };
        let error = drain_batch(db, &batch, &shared);
        let sealed = db.commits;
        let mut st = shared.state.lock().unwrap();
        st.busy = false;
        st.last_sealed = sealed;
        if let Some(e) = error {
            if st.first_error.is_none() {
                st.first_error = Some(e);
            }
            // Submissions enqueued while the failing batch ran
            // reserved sequence numbers that can no longer be
            // honored gaplessly: abort them and restart reservations
            // from what actually sealed.
            for sub in st.queue.drain(..) {
                sub.ticket.fulfill(Err(Error::Aborted));
            }
            st.reserved = sealed;
        }
        drop(st);
        shared.done.notify_all();
    }
}

/// Drains one batch in submission order. Runs of single-statement
/// submissions are sealed through the pipelined window machinery
/// (chunked at the database's pipeline depth); anything else commits
/// like a sequential transaction. After the first failure every
/// remaining ticket aborts. Returns the first failure, if any.
fn drain_batch(db: &mut DbInner, batch: &[Submission], shared: &Shared) -> Option<Error> {
    let mut error: Option<Error> = None;
    let mut i = 0;
    while i < batch.len() {
        if let Some(_e) = &error {
            batch[i].ticket.fulfill(Err(Error::Aborted));
            i += 1;
            continue;
        }
        let result = if batch[i].stmts.len() == 1 {
            let mut run_end = i;
            while run_end < batch.len() && batch[run_end].stmts.len() == 1 {
                run_end += 1;
            }
            let end = run_end.min(i + db.pipeline.max(1));
            // The refresh-interval policy fires on the service thread
            // between windows, so deferred views refresh off the
            // submitters' critical path.
            let r = seal_window(db, &batch[i..end]).and_then(|()| db.maybe_auto_refresh());
            i = end;
            r
        } else {
            let r = seal_transaction(db, &batch[i]);
            i += 1;
            r
        };
        if let Err(e) = result {
            error = Some(e);
        } else {
            // Publish progress so `commit_barrier` waiters wake
            // per window, not per batch.
            let sealed = db.commits;
            let mut st = shared.state.lock().unwrap();
            st.last_sealed = sealed;
            drop(st);
            shared.done.notify_all();
        }
    }
    error
}

/// Seals a window of single-statement submissions through
/// `propagate_pipelined`, fulfilling each ticket as its commit seals
/// (strictly in order). On failure, every ticket in the window is
/// resolved — sealed prefix with its `Commit`, the failing one with
/// the error, the rest with [`Error::Aborted`] — and on a panic the
/// database is rolled back to the sealed prefix and every view
/// recomputed.
fn seal_window(db: &mut DbInner, window: &[Submission]) -> Result<(), Error> {
    #[cfg(any(test, feature = "fault-inject"))]
    crate::fault::seal_point();
    let stmts: Vec<UpdateStatement> = window.iter().map(|s| s.stmts[0].clone()).collect();
    let pre = db.doc.clone();
    let statik = db.static_masks(&stmts);
    let defer = db.defer_mask();
    let masks: Option<Vec<Vec<bool>>> = match (&statik, &defer) {
        (None, None) => None,
        _ => {
            let blank = vec![false; db.views.len()];
            Some(
                (0..stmts.len())
                    .map(|k| {
                        let s = statik.as_ref().map(|m| m[k].clone());
                        merge_skip(s, defer.clone()).unwrap_or_else(|| blank.clone())
                    })
                    .collect(),
            )
        }
    };
    let want_pre = defer.is_some();
    let sealed = std::cell::Cell::new(0usize);
    let depth = db.pipeline;
    let outcome = {
        let DbInner { doc, views, commits, subs, pending, modes, .. } = db;
        let sealed = &sealed;
        catch_unwind(AssertUnwindSafe(|| {
            views.propagate_pipelined(
                doc,
                &stmts,
                depth,
                masks.as_deref(),
                want_pre,
                |k, pul, pre, mut per_view| {
                    fold_pending(pending, modes, pre, pul, *commits + 1);
                    mark_deferred(&mut per_view, modes);
                    let commit = seal_commit(
                        commits,
                        subs,
                        1,
                        pul.len(),
                        pul.len(),
                        ReductionTrace::default(),
                        per_view,
                    );
                    window[k].ticket.fulfill(Ok(commit));
                    sealed.set(sealed.get() + 1);
                },
            )
        }))
    };
    match outcome {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => {
            // The engine stopped cleanly: commits before the failure
            // sealed (tickets already fulfilled), nothing after the
            // failing statement touched the document.
            fail_tail(window, sealed.get(), e.clone());
            Err(e)
        }
        Err(payload) => {
            let e = Error::Panic(panic_message(payload));
            recover(db, pre, &stmts[..sealed.get()]);
            fail_tail(window, sealed.get(), e.clone());
            Err(e)
        }
    }
}

/// Seals one multi-statement (or empty) submission as a sequential
/// transaction, with the same panic containment as [`seal_window`].
fn seal_transaction(db: &mut DbInner, sub: &Submission) -> Result<(), Error> {
    #[cfg(any(test, feature = "fault-inject"))]
    crate::fault::seal_point();
    let pre = db.doc.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| db.commit_sequential(&sub.stmts)));
    match outcome {
        Ok(Ok(commit)) => {
            sub.ticket.fulfill(Ok(commit));
            Ok(())
        }
        Ok(Err(e)) => {
            sub.ticket.fulfill(Err(e.clone()));
            Err(e)
        }
        Err(payload) => {
            let e = Error::Panic(panic_message(payload));
            recover(db, pre, &[]);
            sub.ticket.fulfill(Err(e.clone()));
            Err(e)
        }
    }
}

/// Resolves the unsealed tail of a failed window: the first unsealed
/// ticket carries the failure, everything behind it aborts.
fn fail_tail(window: &[Submission], sealed: usize, e: Error) {
    if let Some(failing) = window.get(sealed) {
        failing.ticket.fulfill(Err(e));
    }
    for sub in window.iter().skip(sealed + 1) {
        sub.ticket.fulfill(Err(Error::Aborted));
    }
}

/// Post-panic rollback: rebuild the document as `pre` plus the
/// statements whose commits actually sealed (they applied cleanly
/// before the panic, so replaying them cannot fail), then recompute
/// every view from scratch against it. Stores sealed before the
/// panic stay exactly as sealed; the half-propagated state of the
/// panicking window is discarded wholesale.
fn recover(db: &mut DbInner, pre: Document, sealed_stmts: &[UpdateStatement]) {
    let mut doc = pre;
    for stmt in sealed_stmts {
        let pul = compute_pul(&doc, stmt);
        if apply_pul(&mut doc, &pul).is_err() {
            break;
        }
    }
    db.doc = doc;
    db.views.recompute_all(&db.doc);
    // `recompute_all` rebuilt deferred stores against the live
    // document, silently absorbing any accumulated batch — the
    // coalesced refresh event those subscribers were promised can no
    // longer be produced. Discard the batches and force a `Lagged`
    // marker over exactly the folded range, so feed consumers reseed
    // from a snapshot instead of diverging.
    for i in 0..db.pending.len() {
        if let Some(p) = db.pending[i].take() {
            db.subs.force_lag(i, p.first_seq, db.commits);
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
