//! Recursive-descent XPath parser.
//!
//! Accepts the fragment used throughout the paper's test set
//! (Appendix A): `/`, `//`, `*`, name and `@name` tests, `text()`,
//! nested predicates with `and` / `or`, parenthesised predicate
//! expressions, relative paths inside predicates and string
//! comparisons `p = "c"` / `p = 'c'`.

use super::ast::{LocationPath, XNodeTest, XPred, XStep};
use std::fmt;
use xivm_algebra::Axis;

/// XPath syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XPathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xpath parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathParseError {}

/// Parses an absolute or relative location path.
pub fn parse_xpath(input: &str) -> Result<LocationPath, XPathParseError> {
    let mut p = Parser { bytes: input.trim().as_bytes(), pos: 0 };
    let path = p.location_path(true)?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input"));
    }
    Ok(path)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn err(&self, m: &str) -> XPathParseError {
        XPathParseError { offset: self.pos, message: m.to_owned() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// `location_path := step+` where each step starts with `/` or `//`
    /// (for absolute paths) — relative paths inside predicates may also
    /// start with a bare name.
    fn location_path(&mut self, allow_bare_start: bool) -> Result<LocationPath, XPathParseError> {
        let mut steps = Vec::new();
        self.skip_ws();
        // first step
        let axis = if self.starts_with("//") {
            self.pos += 2;
            Axis::Descendant
        } else if self.peek() == Some(b'/') {
            self.pos += 1;
            Axis::Child
        } else if allow_bare_start {
            Axis::Child
        } else {
            return Err(self.err("expected '/' or '//'"));
        };
        steps.push(self.step(axis)?);
        loop {
            self.skip_ws();
            let axis = if self.starts_with("//") {
                self.pos += 2;
                Axis::Descendant
            } else if self.peek() == Some(b'/') {
                self.pos += 1;
                Axis::Child
            } else {
                break;
            };
            steps.push(self.step(axis)?);
        }
        Ok(LocationPath::new(steps))
    }

    fn step(&mut self, axis: Axis) -> Result<XStep, XPathParseError> {
        self.skip_ws();
        let test = match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                XNodeTest::Wildcard
            }
            Some(b'@') => {
                self.pos += 1;
                XNodeTest::Attribute(self.name()?)
            }
            Some(b'.') => {
                self.pos += 1;
                XNodeTest::SelfNode
            }
            _ => {
                let n = self.name()?;
                if n == "text" && self.starts_with("()") {
                    self.pos += 2;
                    XNodeTest::Text
                } else {
                    XNodeTest::Name(n)
                }
            }
        };
        let mut preds = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'[') {
                self.pos += 1;
                let p = self.pred_or()?;
                self.skip_ws();
                if self.peek() != Some(b']') {
                    return Err(self.err("expected ']'"));
                }
                self.pos += 1;
                preds.push(p);
            } else {
                break;
            }
        }
        Ok(XStep { axis, test, preds })
    }

    fn name(&mut self) -> Result<String, XPathParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' && self.pos > start
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_owned())
    }

    /// `or_expr := and_expr ('or' and_expr)*`
    fn pred_or(&mut self) -> Result<XPred, XPathParseError> {
        let mut left = self.pred_and()?;
        loop {
            self.skip_ws();
            if self.keyword("or") {
                let right = self.pred_and()?;
                left = XPred::or(left, right);
            } else {
                return Ok(left);
            }
        }
    }

    /// `and_expr := primary ('and' primary)*`
    fn pred_and(&mut self) -> Result<XPred, XPathParseError> {
        let mut left = self.pred_primary()?;
        loop {
            self.skip_ws();
            if self.keyword("and") {
                let right = self.pred_primary()?;
                left = XPred::and(left, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.starts_with(kw) {
            let after = self.bytes.get(self.pos + kw.len()).copied();
            let boundary = !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == b'_');
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    /// `primary := '(' or_expr ')' | relpath ('=' string)?`
    fn pred_primary(&mut self) -> Result<XPred, XPathParseError> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let inner = self.pred_or()?;
            self.skip_ws();
            if self.peek() != Some(b')') {
                return Err(self.err("expected ')'"));
            }
            self.pos += 1;
            return Ok(inner);
        }
        let path = self.location_path(true)?;
        self.skip_ws();
        if self.peek() == Some(b'=') {
            self.pos += 1;
            self.skip_ws();
            let s = self.string_literal()?;
            return Ok(XPred::ValEq(path, s));
        }
        Ok(XPred::Exists(path))
    }

    fn string_literal(&mut self) -> Result<String, XPathParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a string literal")),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek() != Some(quote) {
            if self.at_end() {
                return Err(self.err("unterminated string literal"));
            }
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_owned();
        self.pos += 1;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_linear_path() {
        let p = parse_xpath("/site/people/person").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[0].test, XNodeTest::Name("site".into()));
    }

    #[test]
    fn parse_descendant_wildcard_attribute() {
        let p = parse_xpath("//regions/*/item/@id").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(p.steps[1].test, XNodeTest::Wildcard);
        assert_eq!(p.steps[3].test, XNodeTest::Attribute("id".into()));
    }

    #[test]
    fn parse_text_test() {
        let p = parse_xpath("/a/b/text()").unwrap();
        assert_eq!(p.steps[2].test, XNodeTest::Text);
    }

    #[test]
    fn parse_exists_predicate() {
        let p = parse_xpath("//person[profile]").unwrap();
        assert_eq!(p.steps[0].preds.len(), 1);
        assert!(matches!(p.steps[0].preds[0], XPred::Exists(_)));
    }

    #[test]
    fn parse_value_predicate() {
        let p = parse_xpath("/site/people/person[@id=\"person0\"]").unwrap();
        match &p.steps[2].preds[0] {
            XPred::ValEq(path, c) => {
                assert_eq!(path.steps[0].test, XNodeTest::Attribute("id".into()));
                assert_eq!(c, "person0");
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parse_and_or_nesting() {
        // A8_AO's shape: address and (phone or homepage) and (creditcard or profile)
        let p =
            parse_xpath("//person[address and (phone or homepage) and (creditcard or profile)]")
                .unwrap();
        match &p.steps[0].preds[0] {
            XPred::And(left, _right) => {
                assert!(matches!(**left, XPred::And(_, _)));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parse_multiple_bracket_predicates() {
        let p = parse_xpath("//item[description][name]").unwrap();
        assert_eq!(p.steps[0].preds.len(), 2);
    }

    #[test]
    fn parse_relative_paths_in_predicates() {
        let p = parse_xpath("//open_auction[bidder/increase = \"4.50\"]").unwrap();
        match &p.steps[0].preds[0] {
            XPred::ValEq(path, c) => {
                assert_eq!(path.len(), 2);
                assert_eq!(c, "4.50");
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_xpath("//a[").is_err());
        assert!(parse_xpath("//a]").is_err());
        assert!(parse_xpath("//a[b=]").is_err());
        assert!(parse_xpath("//a[b='x]").is_err());
        assert!(parse_xpath("//").is_err());
        assert!(parse_xpath("").is_err());
    }

    #[test]
    fn and_is_not_a_name_prefix_confusion() {
        // element names starting with 'and'/'or' must still parse
        let p = parse_xpath("//android[oracle]").unwrap();
        assert_eq!(p.steps[0].test, XNodeTest::Name("android".into()));
        match &p.steps[0].preds[0] {
            XPred::Exists(path) => {
                assert_eq!(path.steps[0].test, XNodeTest::Name("oracle".into()))
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
