//! Parallel multi-view propagation sweep: the full XMark view catalog
//! maintained together under one shared update stream, at 1/2/4/8
//! workers (`XIVM_WORKERS` at runtime picks the same knob).
//!
//! Two pool disciplines are measured per worker count:
//!
//! * **warm** — the persistent `xivm_core::runtime::Runtime` pool:
//!   threads come up on the first propagation and are reused for the
//!   rest of the stream (steady state spawns nothing);
//! * **cold** — `MultiViewEngine::shutdown_runtime()` before every
//!   propagation, so each one pays the full spawn/join round-trip:
//!   the PR 3 per-propagation `thread::scope` discipline, kept
//!   measurable as a series.
//!
//! The catalog sweep carries a lot of per-view work, so spawn cost
//! amortizes; the **tiny-update** sweep that follows is the workload
//! the pool exists for — single-statement commits, measured per
//! update in microseconds, where the warm-vs-cold gap *is* the
//! per-propagation spawn overhead.
//!
//! Worker counts beyond the machine's core count cannot speed
//! anything up — on a single-core host every row measures scheduler
//! overhead only, so the sweep prints the available parallelism
//! alongside the results, reports the per-repetition spread
//! (min/median/stddev, not a bare mean), and on a 1-core host
//! **refuses to print a `speedup_vs_1_worker` column at all**: OS
//! time-slicing cannot produce wall-clock speedup, so that label
//! would be a lie — the column degrades to `relative_vs_1_worker`.

use std::time::Instant;
use xivm_bench::{figure_header, ms, rep_stats, repetitions, row};
use xivm_core::{MultiViewEngine, SnowcapStrategy};
use xivm_update::UpdateStatement;
use xivm_xmark::sizes::reference_size;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};
use xivm_xml::Document;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn catalog_engine(doc: &Document) -> MultiViewEngine {
    MultiViewEngine::new(
        doc,
        VIEW_NAMES.iter().map(|v| (v.to_string(), view_pattern(v), SnowcapStrategy::MinimalChain)),
    )
}

/// One insert and one delete per catalog view: a stream that touches
/// every view at least once, so the per-view phases carry real work.
fn update_stream() -> Vec<UpdateStatement> {
    let mut stream = Vec::new();
    for view in VIEW_NAMES {
        if let Some(u) = updates_for_view(view).first() {
            stream.push(u.insert_stmt());
            stream.push(u.delete_stmt());
        }
    }
    stream
}

/// The tiny-update workload: one single-statement commit at a time
/// (an insert, then the matching delete, repeated), the shape that
/// dominates heavy-traffic streams and where per-propagation spawn
/// overhead is pure loss.
fn tiny_stream(rounds: usize) -> Vec<UpdateStatement> {
    let u = updates_for_view(VIEW_NAMES[0]).into_iter().next().expect("catalog has updates");
    let mut stream = Vec::with_capacity(rounds * 2);
    for _ in 0..rounds {
        stream.push(u.insert_stmt());
        stream.push(u.delete_stmt());
    }
    stream
}

/// Runs `stream` through a fresh catalog engine at `workers`,
/// returning (total propagate ms, avg groups per statement). `cold`
/// retires the pool after every propagation *inside the timed
/// region*, so each update pays the full spawn **and** join
/// round-trip — exactly what the per-propagation `thread::scope`
/// discipline paid.
fn run_stream(
    doc: &Document,
    stream: &[UpdateStatement],
    workers: usize,
    cold: bool,
) -> (f64, f64) {
    let mut d = doc.clone();
    let mut engine = catalog_engine(&d);
    engine.set_workers(workers);
    if cold {
        engine.shutdown_runtime(); // first update starts cold too
    }
    let mut total = 0.0;
    let mut groups_total = 0usize;
    for stmt in stream {
        let pul = xivm_update::compute_pul(&d, stmt);
        groups_total += engine.partition(&d, &pul).len();
        let start = Instant::now();
        engine.propagate_pul(&mut d, &pul).expect("propagation succeeds");
        if cold {
            // pay the join half of the round-trip in the window, and
            // leave the pool down for the next update's cold start
            engine.shutdown_runtime();
        }
        total += ms(start.elapsed());
    }
    (total, groups_total as f64 / stream.len() as f64)
}

fn main() {
    let size = reference_size();
    let doc = generate_sized(size.bytes);
    let stream = update_stream();
    let reps = repetitions();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    figure_header(
        "Parallel sweep (warm pool vs cold spawn)",
        &format!(
            "multi-view propagation, {} views x {} statements, {} document, {cores} core(s)",
            VIEW_NAMES.len(),
            stream.len(),
            size.label
        ),
    );
    // On a single-core host a "speedup" column would be a lie — OS
    // time-slicing cannot produce wall-clock speedup, so the ratio
    // only measures scheduler overhead. Refuse the label there.
    let ratio_label = if cores > 1 { "speedup_vs_1_worker" } else { "relative_vs_1_worker" };
    if cores == 1 {
        println!(
            "# single-core host: refusing the speedup_vs_1_worker label; \
             the ratio column below measures scheduler overhead only"
        );
    }
    row(&[
        "workers".to_owned(),
        "warm_ms".to_owned(),
        "warm_min_ms".to_owned(),
        "warm_median_ms".to_owned(),
        "warm_stddev_ms".to_owned(),
        "cold_ms".to_owned(),
        "cold_over_warm".to_owned(),
        ratio_label.to_owned(),
        "groups_avg".to_owned(),
    ]);

    let mut baseline_ms = None;
    for workers in WORKER_SWEEP {
        let (mut warm_runs, mut cold_runs) = (Vec::new(), Vec::new());
        let mut groups_avg = 0.0;
        for _ in 0..reps {
            let (w, g) = run_stream(&doc, &stream, workers, false);
            warm_runs.push(w);
            groups_avg = g;
            let (c, _) = run_stream(&doc, &stream, workers, true);
            cold_runs.push(c);
        }
        let warm = rep_stats(&warm_runs);
        let cold = rep_stats(&cold_runs);
        let baseline = *baseline_ms.get_or_insert(warm.mean);
        row(&[
            workers.to_string(),
            format!("{:.3}", warm.mean),
            format!("{:.3}", warm.min),
            format!("{:.3}", warm.median),
            format!("{:.3}", warm.stddev),
            format!("{:.3}", cold.mean),
            format!("{:.2}", cold.mean / warm.mean),
            format!("{:.2}", baseline / warm.mean),
            format!("{groups_avg:.1}"),
        ]);
    }

    // --- tiny updates: the workload the persistent pool exists for.
    // A small document keeps per-update propagation in the tens of
    // microseconds, so the warm-vs-cold gap is the spawn overhead
    // itself rather than noise on top of heavy per-view work.
    let tiny_doc_bytes = 32 * 1024;
    let tiny_doc = generate_sized(tiny_doc_bytes);
    let rounds = 200;
    let tiny = tiny_stream(rounds);
    figure_header(
        "Tiny updates (1-statement commits)",
        &format!(
            "per-update propagation cost, warm pool vs cold spawn, {} single-statement \
             updates, {}KB document",
            tiny.len(),
            tiny_doc_bytes / 1024
        ),
    );
    row(&[
        "workers".to_owned(),
        "warm_us_per_update".to_owned(),
        "warm_min_us".to_owned(),
        "warm_median_us".to_owned(),
        "warm_stddev_us".to_owned(),
        "cold_us_per_update".to_owned(),
        "cold_over_warm".to_owned(),
    ]);
    for workers in WORKER_SWEEP {
        let per_update = 1000.0 / tiny.len() as f64;
        let (mut warm_runs, mut cold_runs) = (Vec::new(), Vec::new());
        for _ in 0..reps {
            warm_runs.push(run_stream(&tiny_doc, &tiny, workers, false).0 * per_update);
            cold_runs.push(run_stream(&tiny_doc, &tiny, workers, true).0 * per_update);
        }
        let warm = rep_stats(&warm_runs);
        let cold = rep_stats(&cold_runs);
        row(&[
            workers.to_string(),
            format!("{:.1}", warm.mean),
            format!("{:.1}", warm.min),
            format!("{:.1}", warm.median),
            format!("{:.1}", warm.stddev),
            format!("{:.1}", cold.mean),
            format!("{:.2}", cold.mean / warm.mean),
        ]);
    }
}
