//! Auction-site scenario: the paper's XMark workload end to end.
//!
//! Generates an auction document, materializes two of the paper's
//! views (Q1: person names, Q6: all items), then streams a mix of
//! catalog updates through the maintenance engine, comparing each
//! propagation against full recomputation.
//!
//! ```sh
//! cargo run --release --example auction_site
//! ```

use std::time::Instant;
use xivm::core::{MaintenanceEngine, SnowcapStrategy};
use xivm::ivma::recompute_store;
use xivm::xmark::{generate_sized, update_by_name, view_pattern};

fn main() {
    let doc0 = generate_sized(200 * 1024);
    println!(
        "generated auction document: {} live nodes, {} persons, {} items",
        doc0.live_count(),
        doc0.canonical_nodes_named("person").len(),
        doc0.canonical_nodes_named("item").len(),
    );

    for view_name in ["Q1", "Q6"] {
        let pattern = view_pattern(view_name);
        let mut doc = doc0.clone();
        let mut engine =
            MaintenanceEngine::new(&doc, pattern.clone(), SnowcapStrategy::MinimalChain);
        println!("\n=== view {view_name}: {} tuples materialized ===", engine.store().len());

        // a day in the life of the auction site
        let script = [
            ("new names for active people", update_by_name("A6_A").insert_stmt()),
            ("items arrive in every region", update_by_name("E6_L").insert_stmt()),
            ("spam items purged", update_by_name("X8_AO").delete_stmt()),
            ("privacy-conscious bidders bid", update_by_name("X4_O").insert_stmt()),
        ];
        for (what, stmt) in script {
            let report = engine.apply_statement(&mut doc, &stmt).expect("propagation succeeds");
            // sanity: full recomputation agrees
            let check = Instant::now();
            let fresh = recompute_store(&doc, &pattern);
            let recompute_ms = check.elapsed().as_secs_f64() * 1e3;
            assert!(
                engine.store().same_content_as(&fresh),
                "incremental and recomputed views diverged"
            );
            println!(
                "  {what:<32} +{:<4} -{:<4} tuples | incremental {:>8.3} ms | recompute {:>8.3} ms",
                report.tuples_added,
                report.tuples_removed,
                report.timings.maintenance_total().as_secs_f64() * 1e3,
                recompute_ms,
            );
        }
        println!("  final view size: {} tuples", engine.store().len());
    }
}
