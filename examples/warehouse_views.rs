//! Warehouse scenario: several views over one document, chosen
//! auxiliary structures, and durable snapshots.
//!
//! Demonstrates the three extensions built on top of the paper's core
//! (DESIGN.md §5b): the multi-view engine (one target-finding pass and
//! one document update shared by all views), cost-based snowcap
//! selection from a workload log, and binary view snapshots.
//!
//! ```sh
//! cargo run --release --example warehouse_views
//! ```

use xivm::core::costmodel::{choose_snowcaps, DocStats, UpdateProfile};
use xivm::core::snapshot::{decode_store, encode_store};
use xivm::core::{MaintenanceEngine, MultiViewEngine, SnowcapStrategy};
use xivm::xmark::{generate_sized, update_by_name, view_pattern};

fn main() {
    let mut doc = generate_sized(150 * 1024);

    // --- several views, one maintenance pass per update ---------------
    let mut warehouse = MultiViewEngine::new(
        &doc,
        ["Q1", "Q2", "Q6", "Q17"]
            .map(|v| (v.to_owned(), view_pattern(v), SnowcapStrategy::MinimalChain)),
    );
    println!("materialized {} views over one auction document", warehouse.len());

    for u in ["A6_A", "X4_O", "B5_LB"] {
        let stmt = update_by_name(u).insert_stmt();
        let reports = warehouse.apply_statement(&mut doc, &stmt).expect("propagates");
        let touched: Vec<String> = reports
            .iter()
            .filter(|(_, r)| r.tuples_added + r.tuples_removed + r.tuples_modified > 0)
            .map(|(n, r)| format!("{n}(+{})", r.tuples_added))
            .collect();
        println!(
            "  {u:<6} found targets once ({:>7.3} ms), affected: {}",
            reports[0].1.timings.find_target_nodes.as_secs_f64() * 1e3,
            if touched.is_empty() { "none".to_owned() } else { touched.join(" ") },
        );
    }

    // --- cost-based snowcap choice from a workload log ----------------
    let pattern = view_pattern("Q2");
    let log = vec![update_by_name("X2_L").insert_stmt(), update_by_name("X4_O").insert_stmt()];
    let stats = DocStats::collect(&doc);
    let profile = UpdateProfile::from_log(&doc, &pattern, &log);
    let chosen = choose_snowcaps(&pattern, &stats, &profile);
    println!("\ncost model chose {} snowcap(s) for Q2 under this workload profile", chosen.len());
    let mut engine = MaintenanceEngine::new_cost_based(&doc, pattern, &profile);
    let report = engine
        .apply_statement(&mut doc, &update_by_name("X2_L").insert_stmt())
        .expect("propagates");
    println!(
        "  maintained Q2 in {:.3} ms (+{} tuples)",
        report.timings.maintenance_total().as_secs_f64() * 1e3,
        report.tuples_added
    );

    // --- durable snapshots ---------------------------------------------
    let bytes = encode_store(engine.store());
    let restored = decode_store(&bytes).expect("snapshot decodes");
    assert!(engine.store().same_content_as(&restored));
    println!(
        "\nsnapshotted Q2: {} tuples in {} bytes ({} bytes/tuple), restored losslessly",
        engine.store().len(),
        bytes.len(),
        bytes.len() / engine.store().len().max(1)
    );
}
