//! Snapshot-isolation properties for the MVCC layer.
//!
//! Three contracts pin `Database::snapshot()` and the sharded store
//! capture:
//!
//! 1. **Replay equivalence** — the snapshot taken at sequence number
//!    *k* is bit-identical to replaying the Σ deltas of commits
//!    `1..=k` onto the seed stores (the same oracle as
//!    `deltas_replay_to_store` in `tests/property.rs`, pointed at the
//!    frozen image instead of the live store).
//! 2. **Isolation** — reads through a snapshot (document, stores) are
//!    unaffected by any number of commits applied afterwards, sealed
//!    one by one or pipelined; and a reader *thread* holding a
//!    snapshot observes no torn or blocking state across ≥ 100
//!    concurrent commits.
//! 3. **Sharding is lossless** — `Database::sharded_stores` groups
//!    every view into exactly one Figure 15 shard and flattening the
//!    shards back yields stores bit-identical to the unsharded ones,
//!    at every worker count 1–8.

use proptest::prelude::*;
use xivm::prelude::*;

// ---------------------------------------------------------------------
// Workload generation (the soak/property alphabets, kept local so the
// suites can evolve separately)
// ---------------------------------------------------------------------

fn arb_tree(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("<b/>".to_owned()),
        Just("<c/>".to_owned()),
        Just("<d>5</d>".to_owned()),
        Just("x".to_owned()),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")],
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, kids)| {
                if kids.is_empty() {
                    format!("<{tag}/>")
                } else {
                    format!("<{tag}>{}</{tag}>", kids.join(""))
                }
            })
    })
}

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_tree(3), 1..5).prop_map(|kids| format!("<r>{}</r>", kids.join("")))
}

const PATTERNS: [&str; 6] = [
    "//a{id}//b{id}",
    "//a{id}[//c{id}]//b{id}",
    "//a{id}//b{id}//c{id}",
    "//r{id}//d{id,val}",
    "//a{id}[//d[val=\"5\"]]//b{id}",
    "//a{id,cont}[//b]",
];

const TARGETS: [&str; 4] = ["//a", "//b", "//a//c", "//d"];
const FORESTS: [&str; 4] = ["<b/>", "<a><b/><c/></a>", "<c><b/></c>", "<d>5</d>"];

type ScriptStep = (usize, usize, bool);

fn script_statement(&(t, f, is_insert): &ScriptStep) -> String {
    if is_insert {
        format!("insert {} into {}", FORESTS[f], TARGETS[t])
    } else {
        format!("delete {}", TARGETS[t])
    }
}

fn build_db(doc_xml: &str, view_idxs: &[usize], workers: usize, pipeline: usize) -> Database {
    let mut b = Database::builder().document(doc_xml).workers(workers).pipeline(pipeline);
    for (i, &p) in view_idxs.iter().enumerate() {
        b = b.view(format!("v{i}"), PATTERNS[p]);
    }
    b.build().expect("snapshot-isolation database builds")
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// (1) Replay equivalence: the snapshot at seq k equals the seed
    /// stores plus the replayed Σ deltas of commits 1..=k — for every
    /// k of the script, checked against snapshots captured as the
    /// commits landed.
    #[test]
    fn snapshot_at_seq_k_equals_seed_plus_deltas(
        doc_xml in arb_doc(),
        view_idxs in prop::collection::vec(0usize..PATTERNS.len(), 1..4),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..6
        ),
        workers in 1usize..5,
    ) {
        let mut db = build_db(&doc_xml, &view_idxs, workers, 1);
        // Seed: replicas of every store before the first commit.
        let mut replicas: Vec<ViewStore> =
            db.handles().into_iter().map(|h| db.store(h).clone()).collect();
        let subs: Vec<Subscription> =
            db.handles().into_iter().map(|h| db.subscribe(h)).collect();

        let seed = db.snapshot();
        prop_assert_eq!(seed.seq(), 0, "the seed snapshot is at seq 0");

        // One snapshot per commit, captured as the commits land.
        let mut snapshots: Vec<DatabaseSnapshot> = Vec::with_capacity(script.len());
        for step in &script {
            db.apply(script_statement(step).as_str()).unwrap();
            snapshots.push(db.snapshot());
        }

        // Replay: advance the replicas delta by delta; after commit k
        // they must equal snapshot k exactly.
        let streams: Vec<Vec<DeltaEvent>> = subs.iter().map(|s| db.drain(s)).collect();
        for (k, snap) in snapshots.iter().enumerate() {
            prop_assert_eq!(snap.seq(), k as u64 + 1, "snapshots stamp their commit seq");
            for (v, h) in db.handles().into_iter().enumerate() {
                let event = &streams[v][k];
                prop_assert_eq!(event.seq, k as u64 + 1);
                event.delta.replay(&mut replicas[v]);
                prop_assert!(
                    snap.store(h).identical_to(&replicas[v]),
                    "snapshot at seq {} of view {} != seed + Σ deltas 1..={}",
                    snap.seq(), db.name(h), snap.seq()
                );
            }
        }
        for sub in subs {
            db.unsubscribe(sub);
        }
    }

    /// (2) Isolation: a snapshot taken mid-stream reads identically
    /// before and after the rest of the script commits — whether the
    /// suffix lands one by one or pipelined.
    #[test]
    fn snapshot_reads_are_unaffected_by_later_commits(
        doc_xml in arb_doc(),
        view_idxs in prop::collection::vec(0usize..PATTERNS.len(), 1..4),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            2..7
        ),
        split in 0usize..6,
        workers in 1usize..5,
        depth in 1usize..5,
        pipelined in prop::bool::ANY,
    ) {
        let split = split.min(script.len() - 1);
        let mut db = build_db(&doc_xml, &view_idxs, workers, depth);
        for step in &script[..split] {
            db.apply(script_statement(step).as_str()).unwrap();
        }

        // Freeze, and record what the frozen image reads now.
        let snap = db.snapshot();
        let doc_before = snap.serialize();
        let stores_before: Vec<ViewStore> =
            db.handles().into_iter().map(|h| snap.store(h).clone()).collect();

        // Land the suffix on the live database.
        let suffix: Vec<String> = script[split..].iter().map(script_statement).collect();
        if pipelined {
            db.apply_pipelined(suffix.iter().map(String::as_str)).unwrap();
        } else {
            for s in &suffix {
                db.apply(s.as_str()).unwrap();
            }
        }
        prop_assert_eq!(db.last_seq(), script.len() as u64);

        // The snapshot still reads exactly the frozen state.
        prop_assert_eq!(snap.seq(), split as u64, "seq is immutable");
        prop_assert_eq!(snap.serialize(), doc_before, "document reads are frozen");
        for (v, h) in db.handles().into_iter().enumerate() {
            prop_assert!(
                snap.store(h).identical_to(&stores_before[v]),
                "store reads of view {} drifted under later commits",
                db.name(h)
            );
        }
    }

    /// (3) Sharding is lossless at workers 1–8: every view lands in
    /// exactly one shard and the flattened shards are bit-identical
    /// to the unsharded stores.
    #[test]
    fn sharded_stores_equal_unsharded_at_all_worker_counts(
        doc_xml in arb_doc(),
        view_idxs in prop::collection::vec(0usize..PATTERNS.len(), 1..4),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..5
        ),
        probe in (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
    ) {
        for workers in 1..=8usize {
            let mut db = build_db(&doc_xml, &view_idxs, workers, 1);
            for step in &script {
                db.apply(script_statement(step).as_str()).unwrap();
            }
            let sharded = db.sharded_stores(script_statement(&probe).as_str()).unwrap();

            // Partition: every view in exactly one shard.
            let mut seen = vec![0usize; db.len()];
            for s in 0..sharded.len() {
                for (idx, name, _) in sharded.shard(s) {
                    prop_assert_eq!(db.name(db.view(name).unwrap()), name);
                    prop_assert_eq!(sharded.shard_of(idx), Some(s));
                    seen[idx] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1), "each view in exactly one shard");

            // Lossless: flattening back equals the live stores.
            let flat = sharded.unsharded();
            prop_assert_eq!(flat.len(), db.len());
            for ((name, store), h) in flat.into_iter().zip(db.handles()) {
                prop_assert_eq!(name, db.name(h));
                prop_assert!(
                    store.identical_to(db.store(h)),
                    "sharded capture of view {} diverged at {} workers",
                    name, workers
                );
            }

            // The plan is exactly the engine's Figure 15 partition.
            let plan = db.shard_plan(script_statement(&probe).as_str()).unwrap();
            prop_assert_eq!(plan.len(), sharded.len());
        }
    }
}

/// (2b) The acceptance bar for the MVCC layer: a reader *thread*
/// holding a snapshot observes no torn or blocking state while the
/// writer lands ≥ 100 commits concurrently (plain and pipelined).
/// Every read of the frozen image — document text, store contents,
/// XPath — must keep returning exactly the captured state.
#[test]
fn snapshot_reader_survives_100_concurrent_commits() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let doc = "<r><a><c><b/><b/></c><f><c><b/></c><b/></f></a><a><d>5</d><b/></a></r>";
    let mut db = build_db(doc, &[0, 1, 2, 3], 4, 4);
    db.apply("insert <b/> into //c").unwrap();

    let snap = db.snapshot();
    let frozen_doc = snap.serialize();
    let frozen_counts: Vec<(String, usize, u64)> = (0..snap.len())
        .map(|i| {
            let h = snap.view(&format!("v{i}")).unwrap();
            (format!("v{i}"), snap.store(h).len(), snap.store(h).total_derivations())
        })
        .collect();
    let frozen_hits = snap.xpath("//b").unwrap().len();

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        let frozen_doc = frozen_doc.clone();
        let frozen_counts = frozen_counts.clone();
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                assert_eq!(snap.seq(), 1, "seq is immutable");
                assert_eq!(snap.serialize(), frozen_doc, "torn document read");
                for (name, len, derivations) in &frozen_counts {
                    let h = snap.view(name).unwrap();
                    assert_eq!(snap.store(h).len(), *len, "torn store read on {name}");
                    assert_eq!(snap.store(h).total_derivations(), *derivations);
                    assert_eq!(snap.cursor(h).len(), *len);
                }
                assert_eq!(snap.xpath("//b").unwrap().len(), frozen_hits, "torn XPath read");
                reads += 1;
            }
            (snap, reads)
        })
    };

    // ≥ 100 concurrent commits while the reader hammers the snapshot:
    // 60 plain applies + 4 pipelined windows of 10.
    for _ in 0..30 {
        db.apply("insert <b/> into //c").unwrap();
        db.apply("delete //c//b").unwrap();
    }
    for _ in 0..4 {
        let batch: Vec<&str> = std::iter::repeat_n("insert <c><b/></c> into //a", 5)
            .chain(std::iter::repeat_n("delete //a//c", 5))
            .collect();
        db.apply_pipelined(batch).unwrap();
    }
    assert!(db.last_seq() >= 101, "the writer really landed 100+ commits");

    stop.store(true, Ordering::Relaxed);
    let (snap, reads) = reader.join().expect("reader thread never panics (no torn reads)");
    assert!(reads > 0, "the reader actually read during the commits");
    // And the snapshot still reads the frozen state afterwards.
    assert_eq!(snap.serialize(), frozen_doc);
    assert_ne!(db.last_seq(), snap.seq());
}

/// Snapshot ergonomics pinned: name/handle round-trips, view_names,
/// unknown-view errors, XPath parse errors and the binary image all
/// work on the frozen image exactly as on the live database.
#[test]
fn snapshot_surface_matches_database() {
    let doc = "<r><a><c><b/></c></a><a><b/></a></r>";
    let mut db = build_db(doc, &[0, 1], 1, 1);
    db.apply("insert <b/> into //c").unwrap();
    let snap = db.snapshot();

    assert_eq!(snap.len(), db.len());
    assert!(!snap.is_empty());
    assert_eq!(snap.view_names(), db.view_names());
    for h in db.handles() {
        assert_eq!(snap.name(h), db.name(h));
        let again = snap.view(snap.name(h)).unwrap();
        assert_eq!(snap.name(again), db.name(h));
        // the binary image of the frozen store decodes to the same store
        let decoded = xivm::core::snapshot::decode_store(&snap.encode_view(h)).unwrap();
        assert!(decoded.identical_to(snap.store(h)));
    }
    assert!(matches!(snap.view("nope"), Err(Error::UnknownView(_))));
    assert!(snap.xpath("//b{").is_err(), "XPath parse errors surface as Error");
    assert_eq!(snap.document().live_count(), db.document().live_count());
}
