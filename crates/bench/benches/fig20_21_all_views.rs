//! Figures 20 and 21: total view-maintenance time for all 35
//! (view, update) pairs — insert propagation (Figure 20) and delete
//! propagation (Figure 21) on the reference document.

use xivm_bench::{averaged, figure_header, ms, repetitions, row};
use xivm_core::SnowcapStrategy;
use xivm_xmark::sizes::reference_size;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};

fn main() {
    let size = reference_size();
    let doc = generate_sized(size.bytes);
    let reps = repetitions();

    for (figure, is_insert) in [("Figure 20", true), ("Figure 21", false)] {
        let kind = if is_insert { "insert" } else { "delete" };
        figure_header(
            figure,
            &format!("view {kind} performance, all views, {} document", size.label),
        );
        row(&["pair".to_owned(), "total_maintenance_ms".to_owned()]);
        for view in VIEW_NAMES {
            let pattern = view_pattern(view);
            for u in updates_for_view(view) {
                let stmt = if is_insert { u.insert_stmt() } else { u.delete_stmt() };
                let t = averaged(reps, || {
                    xivm_bench::run_once(&doc, &pattern, &stmt, SnowcapStrategy::MinimalChain)
                        .timings
                });
                row(&[format!("{view}_{}", u.name), format!("{:.3}", ms(t.maintenance_total()))]);
            }
        }
    }
}
