//! Data-driven term pruning.
//!
//! * Proposition 3.6 — a term is empty when σ(Δ⁺) is empty for one of
//!   its Δ-nodes (the inserted trees simply do not contain matches);
//! * Proposition 3.8 — a term containing `R_{n1} Δ⁺_{n2}` (with `n1`
//!   an ancestor of `n2` in the view) is empty when no insertion
//!   target's ID carries the label of `n1` on its root path;
//! * Proposition 4.7 — a term containing `R_{n1} Δ⁻_{n2}` is empty
//!   when no deleted `n2`-node's ID carries the label of `n1` above
//!   it.
//!
//! The ID-driven checks read only the Compact Dynamic Dewey IDs — no
//! document access — which is why "Get Update Expression" stays cheap
//! in the Section 6 breakdowns.

use crate::term::Term;
use std::collections::BTreeSet;
use xivm_pattern::{NodeTest, PatternNodeId, TreePattern};
use xivm_update::{DeltaMinus, DeltaPlus};
use xivm_xml::{DeweyId, Document};

/// Statistics of a pruning pass, reported by the engine and checked in
/// the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    pub before: usize,
    pub after_delta_emptiness: usize,
    pub after_id_reasoning: usize,
}

impl PruneStats {
    /// Terms the two prunings dropped together (Propositions 3.6 / 3.8
    /// on the insertion side, 4.2 / 4.7 on the deletion side).
    pub fn pruned(&self) -> usize {
        self.before.saturating_sub(self.after_id_reasoning)
    }

    /// Accumulates another pass's counters — the per-commit aggregation
    /// behind [`Commit::prune_totals`].
    ///
    /// [`Commit::prune_totals`]: crate::commit::Commit::prune_totals
    pub fn absorb(&mut self, other: &PruneStats) {
        self.before += other.before;
        self.after_delta_emptiness += other.after_delta_emptiness;
        self.after_id_reasoning += other.after_id_reasoning;
    }
}

/// Proposition 3.6: keep terms whose Δ-nodes all have non-empty
/// σ(Δ⁺).
pub fn prune_insert_by_deltas(terms: Vec<Term>, deltas: &DeltaPlus) -> Vec<Term> {
    terms.into_iter().filter(|t| t.delta_nodes().iter().all(|&n| !deltas.is_empty(n))).collect()
}

/// Proposition 3.8: keep terms whose every (R-ancestor, Δ-node) pair
/// is *witnessed* by at least one insertion target whose ID carries
/// the ancestor's label on its root path (self included: the target
/// itself may match the ancestor node).
///
/// `subset` is the sub-pattern the terms range over — the full view
/// for PINT proper, or a snowcap when maintaining the lattice.
pub fn prune_insert_by_target_ids(
    doc: &Document,
    pattern: &TreePattern,
    subset: &BTreeSet<PatternNodeId>,
    terms: Vec<Term>,
    targets: &[DeweyId],
) -> Vec<Term> {
    terms
        .into_iter()
        .filter(|t| {
            t.delta_nodes().iter().all(|&n| {
                r_ancestors_in(pattern, t, n, subset).into_iter().all(|anc| {
                    match &pattern.node(anc).test {
                        // wildcards match any element: no label to reason on
                        NodeTest::Wildcard => true,
                        NodeTest::Name(name) => match doc.label_id(name) {
                            // label never seen in the document: R_anc is empty
                            None => false,
                            Some(l) => targets.iter().any(|p| p.has_self_or_ancestor_labeled(l)),
                        },
                    }
                })
            })
        })
        .collect()
}

/// R-bound ancestors of `node` that belong to the sub-pattern.
fn r_ancestors_in(
    pattern: &TreePattern,
    term: &Term,
    node: PatternNodeId,
    subset: &BTreeSet<PatternNodeId>,
) -> Vec<PatternNodeId> {
    term.r_ancestors_of(pattern, node).into_iter().filter(|a| subset.contains(a)).collect()
}

/// Δ⁻-emptiness: keep deletion terms whose Δ-nodes all have non-empty
/// Δ⁻ (the deletion analogue of Proposition 3.6, used implicitly in
/// Example 4.5 when Δ⁻_a = ∅ removes the ΔaΔbΔc term).
pub fn prune_delete_by_deltas(terms: Vec<Term>, deltas: &DeltaMinus) -> Vec<Term> {
    terms.into_iter().filter(|t| t.delta_nodes().iter().all(|&n| !deltas.is_empty(n))).collect()
}

/// Proposition 4.7: keep deletion terms whose every (R-ancestor,
/// Δ-node) pair is witnessed by a deleted node whose ID has the
/// ancestor's label strictly above it.
pub fn prune_delete_by_ids(
    doc: &Document,
    pattern: &TreePattern,
    subset: &BTreeSet<PatternNodeId>,
    terms: Vec<Term>,
    deltas: &DeltaMinus,
) -> Vec<Term> {
    terms
        .into_iter()
        .filter(|t| {
            t.delta_nodes().iter().all(|&n| {
                r_ancestors_in(pattern, t, n, subset).into_iter().all(|anc| {
                    match &pattern.node(anc).test {
                        NodeTest::Wildcard => true,
                        NodeTest::Name(name) => match doc.label_id(name) {
                            None => false,
                            Some(l) => {
                                deltas.ids(n).iter().any(|id| id.has_proper_ancestor_labeled(l))
                            }
                        },
                    }
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::surviving_terms;
    use xivm_pattern::parse_pattern;
    use xivm_update::{apply_pul, compute_pul, UpdateStatement};
    use xivm_xml::parse_document;

    /// Example 3.4: inserting <a><b/><b/></a> (no c) empties every
    /// term of v1 = //a//b//c.
    #[test]
    fn example_3_4_all_terms_pruned() {
        let mut d = parse_document("<root><t/></root>").unwrap();
        let stmt = UpdateStatement::insert("//t", "<a><b/><b/></a>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//a//b//c").unwrap();
        let dp = DeltaPlus::compute(&d, &v, &res.inserted);
        let terms = prune_insert_by_deltas(surviving_terms(&v), &dp);
        assert!(terms.is_empty(), "Δ⁺_c = ∅ kills all three surviving terms");
    }

    /// Example 3.5: value predicates participate in Δ-emptiness.
    #[test]
    fn example_3_5_value_pruning() {
        let mut d = parse_document("<root><t/></root>").unwrap();
        let stmt = UpdateStatement::insert("//t", "<a>3<b/><b/></a>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//a[val=\"5\"]//b{id}").unwrap();
        let dp = DeltaPlus::compute(&d, &v, &res.inserted);
        let terms = prune_insert_by_deltas(surviving_terms(&v), &dp);
        // Δ{b} survives Δ-emptiness (two new b's) …
        assert_eq!(terms.len(), 1);
        // … but Prop 3.8 kills it: the target t has no 'a' above it
        // satisfying anything — more precisely there is no a at all on
        // the target's path.
        let full: std::collections::BTreeSet<_> = v.node_ids().collect();
        let terms = prune_insert_by_target_ids(&d, &v, &full, terms, &res.insert_targets);
        assert!(terms.is_empty());
    }

    /// Example 3.7: inserting <b><c/></b> under an `a` whose path has
    /// no other b: the RaRbΔc term dies, Ra ΔbΔc survives.
    #[test]
    fn example_3_7_id_driven_pruning() {
        let mut d = parse_document("<a><x/></a>").unwrap();
        let stmt = UpdateStatement::insert("//a", "<b><c/></b>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//a//b//c").unwrap();
        let dp = DeltaPlus::compute(&d, &v, &res.inserted);
        let terms = prune_insert_by_deltas(surviving_terms(&v), &dp);
        // Δ⁺_a = ∅ removes the all-Δ term; {c} and {b,c} remain
        assert_eq!(terms.len(), 2);
        let full: std::collections::BTreeSet<_> = v.node_ids().collect();
        let terms = prune_insert_by_target_ids(&d, &v, &full, terms, &res.insert_targets);
        // For Δ{c}: R-ancestors of c are a and b. The target (the a
        // node) has label a on its path but no b → pruned.
        // For Δ{b,c}: R-ancestor is a only → witnessed → survives.
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].delta_count(), 2);
    }

    /// Example 4.6: deleting //f removes a b with no c ancestor, so
    /// the Rc Δ⁻b term of //c//b is empty.
    #[test]
    fn example_4_6_delete_id_pruning() {
        let mut d = parse_document("<a><c><b/></c><f><b/></f></a>").unwrap();
        let stmt = UpdateStatement::delete("//f").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//c{id}//b{id}").unwrap();
        let dm = DeltaMinus::compute(&v, &res.deleted);
        let terms = prune_delete_by_deltas(surviving_terms(&v), &dm);
        // Δ⁻_c = ∅ kills the {c,b} term; {b} remains
        assert_eq!(terms.len(), 1);
        let full: std::collections::BTreeSet<_> = v.node_ids().collect();
        let terms = prune_delete_by_ids(&d, &v, &full, terms, &dm);
        assert!(terms.is_empty(), "deleted b has no c ancestor in its ID");
    }

    /// Example 4.5: the full pipeline on //a[//c]//b under delete //a/f/c.
    #[test]
    fn example_4_5_full_deletion_pruning() {
        let d0 = "<a><c><b/><b/></c><f><c><b/></c><b/></f></a>";
        let mut d = parse_document(d0).unwrap();
        let stmt = UpdateStatement::delete("/a/f/c").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//a{id}[//c{id}]//b{id}").unwrap();
        let dm = DeltaMinus::compute(&v, &res.deleted);
        // Prop 4.2 leaves Δ-sets {b}, {c}, {b,c}, {a,b,c}
        let surv = surviving_terms(&v);
        assert_eq!(surv.len(), 4);
        // Δ⁻_a = ∅ removes {a,b,c}
        let terms = prune_delete_by_deltas(surv, &dm);
        assert_eq!(terms.len(), 3);
    }

    #[test]
    fn prune_stats_default() {
        let s = PruneStats::default();
        assert_eq!(s.before, 0);
    }
}
