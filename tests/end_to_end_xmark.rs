//! Full-workload oracle: every catalog view × every paired catalog
//! update, insertion and deletion, across materialization strategies —
//! the incrementally maintained [`Database`] must always equal the
//! from-scratch evaluation, and the IVMA baseline must agree too.

use xivm::ivma::IvmaView;
use xivm::pattern::compile::view_tuples;
use xivm::prelude::*;
use xivm::xmark::{generate_sized, update_by_name, updates_for_view, view_pattern, VIEW_NAMES};

/// Source-document size for the oracle runs. `XIVM_TEST_DOC_BYTES`
/// shrinks (or grows) it without editing the test, so CI can bound
/// runtime the same way `PROPTEST_CASES` bounds the property suite.
fn doc_bytes() -> usize {
    std::env::var("XIVM_TEST_DOC_BYTES").ok().and_then(|v| v.parse().ok()).unwrap_or(40 * 1024)
}

/// A label-name-rendered form of a view's tuples, for comparisons
/// *across* databases: raw `LabelId`s are private to each document's
/// interner, and two equivalent update orders (sequential vs batched)
/// may intern the same names at different ids.
fn fingerprint(db: &Database, h: xivm::ViewHandle) -> Vec<String> {
    db.store(h)
        .sorted_tuples()
        .iter()
        .map(|(t, c)| {
            let fields: Vec<String> = t
                .fields()
                .iter()
                .map(|f| {
                    format!(
                        "{}|{:?}|{:?}",
                        f.id.display_with(|l| db.document().label_name(l).to_owned()),
                        f.val,
                        f.cont
                    )
                })
                .collect();
            format!("({})x{c}", fields.join(","))
        })
        .collect()
}

/// Oracle: every view of `db` equals its from-scratch evaluation over
/// the database's current document.
fn assert_consistent(db: &Database, context: &str) {
    for h in db.handles() {
        let pattern = db.pattern(h).clone();
        let expected = ViewStore::from_counted(&pattern, view_tuples(db.document(), &pattern));
        assert!(
            db.store(h).same_content_as(&expected),
            "{context}: view {} diverged:\n{}",
            db.name(h),
            db.store(h).diff_description(&expected)
        );
    }
}

#[test]
fn database_matches_recomputation_on_all_pairs_inserts() {
    let doc0 = generate_sized(doc_bytes());
    for view in VIEW_NAMES {
        for u in updates_for_view(view) {
            let mut db = Database::builder()
                .document(doc0.clone())
                .view(view, view_pattern(view))
                .build()
                .unwrap();
            db.apply(u.insert_stmt()).unwrap();
            assert_consistent(&db, &format!("{view} + insert {}", u.name));
        }
    }
}

#[test]
fn database_matches_recomputation_on_all_pairs_deletes() {
    let doc0 = generate_sized(doc_bytes());
    for view in VIEW_NAMES {
        for u in updates_for_view(view) {
            let mut db = Database::builder()
                .document(doc0.clone())
                .view(view, view_pattern(view))
                .build()
                .unwrap();
            db.apply(u.delete_stmt()).unwrap();
            assert_consistent(&db, &format!("{view} + delete {}", u.name));
        }
    }
}

#[test]
fn strategies_agree_with_each_other() {
    let doc0 = generate_sized(doc_bytes() / 2);
    for view in ["Q1", "Q3", "Q6"] {
        let pattern = view_pattern(view);
        for u in updates_for_view(view).into_iter().take(2) {
            for stmt in [u.insert_stmt(), u.delete_stmt()] {
                // Same pattern under all three strategies in ONE
                // database: one shared propagation pass must leave
                // identical stores.
                let mut db = Database::builder()
                    .document(doc0.clone())
                    .view_with_strategy("mc", pattern.clone(), SnowcapStrategy::MinimalChain)
                    .view_with_strategy("all", pattern.clone(), SnowcapStrategy::AllSnowcaps)
                    .view_with_strategy("leaves", pattern.clone(), SnowcapStrategy::LeavesOnly)
                    .build()
                    .unwrap();
                db.apply(&stmt).unwrap();
                let handles = db.handles();
                for w in handles.windows(2) {
                    assert!(
                        db.store(w[0]).same_content_as(db.store(w[1])),
                        "{view} {}: {} vs {} disagree",
                        u.name,
                        db.name(w[0]),
                        db.name(w[1])
                    );
                }
            }
        }
    }
}

#[test]
fn ivma_agrees_with_database_on_small_workloads() {
    // IVMA is node-at-a-time; keep the workload small but real.
    let doc0 = generate_sized(20 * 1024);
    for view in ["Q1", "Q6"] {
        let pattern = view_pattern(view);
        for u in updates_for_view(view).into_iter().take(2) {
            // insertion
            let mut db = Database::builder()
                .document(doc0.clone())
                .view(view, pattern.clone())
                .build()
                .unwrap();
            db.apply(u.insert_stmt()).unwrap();

            let mut d2 = doc0.clone();
            let mut ivma = IvmaView::new(&d2, pattern.clone());
            ivma.apply_insert(&mut d2, &u.insert_stmt()).unwrap();

            let h = db.view(view).unwrap();
            assert!(
                db.store(h).same_content_as(ivma.store()),
                "{view} + insert {}: database vs IVMA:\n{}",
                u.name,
                db.store(h).diff_description(ivma.store())
            );
        }
    }
}

#[test]
fn sequences_of_mixed_updates_stay_in_sync() {
    let mut db = Database::builder()
        .document(generate_sized(doc_bytes() / 2))
        .view("Q2", view_pattern("Q2"))
        .build()
        .unwrap();
    let script = [
        updates_for_view("Q2")[0].insert_stmt(),
        updates_for_view("Q2")[1].delete_stmt(),
        updates_for_view("Q2")[2].insert_stmt(),
        updates_for_view("Q2")[3].delete_stmt(),
        updates_for_view("Q2")[4].insert_stmt(),
    ];
    for (i, stmt) in script.iter().enumerate() {
        db.apply(stmt).unwrap();
        assert_consistent(&db, &format!("step {i}"));
    }
    db.document().check_invariants().unwrap();
}

#[test]
fn transactions_match_sequential_application_on_xmark() {
    let doc0 = generate_sized(doc_bytes() / 2);
    let script = [
        updates_for_view("Q2")[0].insert_stmt(),
        updates_for_view("Q2")[1].delete_stmt(),
        updates_for_view("Q6")[0].insert_stmt(),
        updates_for_view("Q2")[2].insert_stmt(),
    ];
    let build = || {
        Database::builder()
            .document(doc0.clone())
            .view("Q2", view_pattern("Q2"))
            .view("Q6", view_pattern("Q6"))
            .build()
            .unwrap()
    };

    let mut one_by_one = build();
    for stmt in &script {
        one_by_one.apply(stmt).unwrap();
    }

    let mut batched = build();
    let mut tx = batched.transaction();
    for stmt in &script {
        tx = tx.statement(stmt);
    }
    let report = tx.commit().unwrap();
    assert_eq!(report.statements, script.len());
    assert!(report.optimized_ops <= report.naive_ops);

    assert_eq!(one_by_one.serialize(), batched.serialize(), "documents diverged");
    for (a, b) in one_by_one.handles().into_iter().zip(batched.handles()) {
        assert_eq!(
            fingerprint(&one_by_one, a),
            fingerprint(&batched, b),
            "view {} diverged between transaction and sequential apply",
            one_by_one.name(a)
        );
    }
    assert_consistent(&batched, "post-transaction");
}

#[test]
fn q1_annotation_variants_maintained_correctly() {
    let doc0 = generate_sized(20 * 1024);
    let del = format!("delete {}", xivm::xmark::X1_L_PRED);
    let ins = "insert <phone>+1</phone> into /site/people/person";
    for variant in xivm::xmark::Q1Variant::ALL {
        let mut db = Database::builder()
            .document(doc0.clone())
            .view(variant.name(), xivm::xmark::q1_variant(variant))
            .build()
            .unwrap();
        for stmt in [ins, del.as_str()] {
            db.apply(stmt).unwrap();
            assert_consistent(&db, &format!("variant {}", variant.name()));
        }
    }
}

#[test]
fn cost_based_database_is_maintained_correctly() {
    let doc0 = generate_sized(20 * 1024);
    let pattern = view_pattern("Q2");
    // profile extracted from a representative statement log
    let log =
        vec![updates_for_view("Q2")[0].insert_stmt(), updates_for_view("Q2")[1].insert_stmt()];
    let profile = UpdateProfile::from_log(&doc0, &pattern, &log);
    let mut db =
        Database::builder().document(doc0).cost_based(profile).view("Q2", pattern).build().unwrap();
    for u in updates_for_view("Q2") {
        for stmt in [u.insert_stmt(), u.delete_stmt()] {
            db.apply(stmt).unwrap();
            assert_consistent(&db, &format!("cost-based {}", u.name));
        }
    }
}

#[test]
fn multi_view_database_on_xmark_workload() {
    let mut builder = Database::builder().document(generate_sized(20 * 1024));
    for v in VIEW_NAMES {
        builder = builder.view(v, view_pattern(v));
    }
    let mut db = builder.build().unwrap();
    assert_eq!(db.view_names(), VIEW_NAMES.to_vec());
    for u in ["X1_L", "E6_L", "X4_O"] {
        let upd = update_by_name(u);
        for stmt in [upd.insert_stmt(), upd.delete_stmt()] {
            db.apply(stmt).unwrap();
            assert_consistent(&db, &format!("multi-view after {u}"));
        }
    }
}
