//! Shared plumbing for the experiment runners (Section 6).
//!
//! Every figure of the paper's evaluation has a dedicated runner under
//! `benches/` (plain `harness = false` binaries, so `cargo bench`
//! regenerates every figure); this crate holds the measurement and
//! table-printing helpers they share.
//!
//! Runner ↔ figure map: `fig18_19_breakdown` (phase breakdowns),
//! `fig20_21_all_views` (all view/update pairs), `fig22_23_path_depth`
//! (deletion path depth), `fig24_annotations` (annotation impact),
//! `fig25_scalability` (document-size ladder), `fig26_27_vs_full`
//! (vs. recomputation), `fig28_vs_ivma` (vs. node-at-a-time IVMA),
//! `fig29_32_snowcaps` (snowcaps vs. leaves only), `fig33_35_pul_rules`
//! (PUL reduction rules), `fig_parallel` (multi-view worker-pool
//! sweep), plus `tablea_testset`, `ablation` and the `micro`
//! criterion benches. Environment knobs (`XIVM_FULL`, `XIVM_BENCH_MS`,
//! `XIVM_WORKERS`) and the committed-baseline workflow are documented
//! in the README's **Benchmarks** section; the `xivm_bench` row of
//! `ARCHITECTURE.md` (repository root) places the runners in the
//! workspace-wide picture.

use std::time::Duration;
use xivm_core::{MaintenanceEngine, SnowcapStrategy, Timings, UpdateReport};
use xivm_pattern::TreePattern;
use xivm_update::UpdateStatement;
use xivm_xml::Document;

/// Milliseconds with two decimals — the unit of the paper's plots.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Prints a figure header in a stable, greppable format.
pub fn figure_header(figure: &str, caption: &str) {
    println!();
    println!("## {figure}: {caption}");
}

/// Prints one CSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(","));
}

/// The five measured phases, as column labels (Section 6.1).
pub const PHASE_COLUMNS: [&str; 6] = [
    "find_target_nodes_ms",
    "compute_delta_tables_ms",
    "get_update_expression_ms",
    "execute_update_ms",
    "update_lattice_ms",
    "maintenance_total_ms",
];

/// Formats a [`Timings`] into the phase columns.
pub fn phase_cells(t: &Timings) -> Vec<String> {
    vec![
        format!("{:.3}", ms(t.find_target_nodes)),
        format!("{:.3}", ms(t.compute_delta_tables)),
        format!("{:.3}", ms(t.get_update_expression)),
        format!("{:.3}", ms(t.execute_update)),
        format!("{:.3}", ms(t.update_lattice)),
        format!("{:.3}", ms(t.maintenance_total())),
    ]
}

/// Runs one (document, view, statement) propagation on fresh copies
/// and returns the report. The document build and view
/// materialization are excluded from the measured phases by
/// construction.
pub fn run_once(
    doc: &Document,
    pattern: &TreePattern,
    stmt: &UpdateStatement,
    strategy: SnowcapStrategy,
) -> UpdateReport {
    let mut doc = doc.clone();
    let mut engine = MaintenanceEngine::new(&doc, pattern.clone(), strategy);
    engine.apply_statement(&mut doc, stmt).expect("propagation succeeds")
}

/// Averages a measurement over `n` runs (the paper averages over five
/// executions).
pub fn averaged<F: FnMut() -> Timings>(n: usize, mut f: F) -> Timings {
    let mut acc = Timings::default();
    for _ in 0..n {
        acc.accumulate(&f());
    }
    Timings {
        find_target_nodes: acc.find_target_nodes / n as u32,
        compute_delta_tables: acc.compute_delta_tables / n as u32,
        get_update_expression: acc.get_update_expression / n as u32,
        execute_update: acc.execute_update / n as u32,
        update_lattice: acc.update_lattice / n as u32,
        apply_document: acc.apply_document / n as u32,
    }
}

/// Summary statistics over one measurement's repetitions. A mean
/// alone hides warm-up spikes and scheduler noise; the sweep runners
/// report the spread alongside it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RepStats {
    pub mean: f64,
    pub min: f64,
    pub median: f64,
    pub stddev: f64,
}

/// Mean/min/median/population-stddev of the per-repetition values.
pub fn rep_stats(values: &[f64]) -> RepStats {
    if values.is_empty() {
        return RepStats::default();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let median = if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
    let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    RepStats { mean, min: sorted[0], median, stddev: var.sqrt() }
}

/// Number of repetitions per measurement (5 in the paper; 3 in quick
/// mode to keep `cargo bench` short).
pub fn repetitions() -> usize {
    if xivm_xmark::sizes::full_scale() {
        5
    } else {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_converts() {
        assert!((ms(Duration::from_millis(1500)) - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn averaged_divides() {
        let t = averaged(2, || Timings {
            execute_update: Duration::from_millis(10),
            ..Default::default()
        });
        assert_eq!(t.execute_update, Duration::from_millis(10));
    }

    #[test]
    fn rep_stats_summarize() {
        assert_eq!(rep_stats(&[]), RepStats::default());
        let s = rep_stats(&[3.0, 1.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert!((s.stddev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let even = rep_stats(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(even.median, 2.5);
    }

    #[test]
    fn run_once_is_side_effect_free() {
        let doc = xivm_xmark::generate_sized(30 * 1024);
        let p = xivm_xmark::view_pattern("Q1");
        let stmt = xivm_xmark::update_by_name("X1_L").insert_stmt();
        let before = xivm_xml::serialize_document(&doc);
        let _ = run_once(&doc, &p, &stmt, SnowcapStrategy::MinimalChain);
        assert_eq!(xivm_xml::serialize_document(&doc), before);
    }
}
