//! The Dewey-specific physical operators of Section 3.4: **Path
//! Filter** (check whether a node's ID lies on a path satisfying a
//! label condition) and **Path Navigate** (derive ancestor IDs from a
//! node's ID without touching the document).

use crate::relation::Relation;
use xivm_xml::{DeweyId, LabelId};

/// Label-path conditions checkable purely from a Dewey ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathCondition {
    /// Some proper ancestor carries the label.
    HasProperAncestor(LabelId),
    /// No proper ancestor carries the label.
    LacksProperAncestor(LabelId),
    /// The node itself or an ancestor carries the label.
    HasSelfOrAncestor(LabelId),
}

impl PathCondition {
    pub fn holds(self, id: &DeweyId) -> bool {
        match self {
            PathCondition::HasProperAncestor(l) => id.has_proper_ancestor_labeled(l),
            PathCondition::LacksProperAncestor(l) => !id.has_proper_ancestor_labeled(l),
            PathCondition::HasSelfOrAncestor(l) => id.has_self_or_ancestor_labeled(l),
        }
    }
}

/// Path Filter: keeps tuples whose `col` ID satisfies `cond`.
pub fn path_filter(input: &Relation, col: usize, cond: PathCondition) -> Relation {
    Relation {
        schema: input.schema.clone(),
        rows: input.rows.iter().filter(|t| cond.holds(&t.field(col).id)).cloned().collect(),
    }
}

/// Path Navigate: from the ID in `col`, computes the ID of the nearest
/// ancestor labeled `label` (self excluded), for every tuple that has
/// one. The resulting IDs are *derived*, not looked up in the store —
/// the defining trick of Dewey navigation.
pub fn path_navigate_to_ancestor(id: &DeweyId, label: LabelId) -> Option<DeweyId> {
    let steps = id.steps();
    if steps.len() < 2 {
        return None;
    }
    for cut in (1..steps.len()).rev() {
        if steps[cut - 1].label == label {
            return Some(DeweyId::from_steps(steps[..cut].to_vec()));
        }
    }
    None
}

/// Path Navigate to the parent ID.
pub fn path_navigate_to_parent(id: &DeweyId) -> Option<DeweyId> {
    id.parent()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{Column, Schema};
    use crate::tuple::{Field, Tuple};
    use xivm_xml::dewey::Step;

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    #[test]
    fn path_filter_keeps_matching() {
        let rows = vec![
            Tuple::new(vec![Field::id_only(id(&[(0, 1), (1, 2), (2, 3)]))]),
            Tuple::new(vec![Field::id_only(id(&[(0, 1), (2, 9)]))]),
        ];
        let r = Relation::with_rows(Schema::new(vec![Column::id_only("c")]), rows);
        let f = path_filter(&r, 0, PathCondition::HasProperAncestor(LabelId(1)));
        assert_eq!(f.len(), 1);
        let g = path_filter(&r, 0, PathCondition::LacksProperAncestor(LabelId(1)));
        assert_eq!(g.len(), 1);
        assert_ne!(f.rows[0], g.rows[0]);
    }

    #[test]
    fn navigate_to_nearest_labeled_ancestor() {
        let d = id(&[(0, 1), (1, 2), (1, 3), (2, 4)]);
        let up = path_navigate_to_ancestor(&d, LabelId(1)).unwrap();
        assert_eq!(up, id(&[(0, 1), (1, 2), (1, 3)]));
        assert_eq!(path_navigate_to_ancestor(&d, LabelId(7)), None);
        assert_eq!(path_navigate_to_parent(&d).unwrap().depth(), 3);
    }

    #[test]
    fn navigate_on_root_returns_none() {
        let d = id(&[(0, 1)]);
        assert_eq!(path_navigate_to_ancestor(&d, LabelId(0)), None);
        assert_eq!(path_navigate_to_parent(&d), None);
    }
}
