//! The persistent propagation runtime: a long-lived worker pool that
//! replaces the per-propagation `std::thread::scope` fan-out.
//!
//! The PR 3 scheduler spawned a fresh scoped pool for every
//! propagation. That is fine when one update carries a lot of
//! per-view work, but heavy-traffic workloads are dominated by *tiny*
//! updates (one statement, a handful of delta entries), where the
//! spawn/join round-trip is pure overhead — the `fig_parallel`
//! warm-vs-cold series measures it. [`Runtime`] keeps the workers
//! alive across propagations instead:
//!
//! * **lazy start** — constructing a [`Runtime`] spawns nothing;
//!   threads come up on the first batch that actually needs them, and
//!   never more than the batch can use (`min(workers − 1, jobs − 1)`:
//!   the submitting thread always works its own share);
//! * **steady state spawns zero threads** — [`Runtime::threads_spawned`]
//!   is a monotonic counter the soak harness asserts is flat across
//!   steady-state propagations;
//! * **clean shutdown** — dropping the runtime flags shutdown, wakes
//!   every worker and joins them, so a dropped `Database` leaves no
//!   threads behind.
//!
//! One batch runs at a time (submissions serialize on an internal
//! lock). Jobs of a batch sit behind a shared atomic cursor — an idle
//! worker claims the next unclaimed job rather than owning a fixed
//! slice, exactly the work-stealing-lite discipline of the old scoped
//! pool — and the crate-internal `Runtime::run` returns only after every job has
//! finished, which is what makes it sound to hand the pool closures
//! that borrow the caller's stack (see the safety note on `run`).
//! A panicking job is caught, the batch still drains, and the panic
//! resumes on the submitting thread — the same observable behavior as
//! a scoped `join().unwrap()`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One unit of pool work. Jobs are type-erased closures; results
/// travel through captured `&Mutex<Option<_>>` slots.
pub(crate) type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Resolves the effective worker count: an explicit configuration
/// (the `Database` builder's `.workers(n)`) wins, otherwise the
/// `XIVM_WORKERS` environment variable, otherwise 1 (sequential).
/// Zero is clamped to 1.
pub fn effective_workers(configured: Option<usize>) -> usize {
    configured.or_else(env_workers).unwrap_or(1).max(1)
}

/// The `XIVM_WORKERS` environment override, when set and parseable.
pub fn env_workers() -> Option<usize> {
    std::env::var("XIVM_WORKERS").ok().and_then(|v| v.parse().ok())
}

/// Upper bound on the pipeline depth. Every in-flight commit of a
/// window holds two copy-on-write document snapshots (pre- and
/// post-apply), so the depth bounds the snapshot working set; beyond
/// this, extra depth only adds memory without any remaining overlap
/// to extract.
pub const MAX_PIPELINE_DEPTH: usize = 64;

/// Resolves the effective pipeline depth: an explicit configuration
/// (the `Database` builder's `.pipeline(depth)`) wins, otherwise the
/// `XIVM_PIPELINE` environment variable, otherwise 1 (no pipelining).
/// The result is clamped into `1..=MAX_PIPELINE_DEPTH` (see
/// [`clamp_pipeline`]) — never silently ignored: whatever this
/// returns is exactly the depth the pipeline runs at and the depth
/// `Database::pipeline_depth` reports.
pub fn effective_pipeline(configured: Option<usize>) -> usize {
    clamp_pipeline(configured.or_else(env_pipeline).unwrap_or(1))
}

/// Clamps a requested pipeline depth into `1..=`[`MAX_PIPELINE_DEPTH`].
/// Zero (a documented "off" spelling) clamps to 1 silently; an
/// over-the-cap request is clamped too, with a diagnostic on stderr in
/// debug builds so an unachievable depth never goes unnoticed.
pub fn clamp_pipeline(depth: usize) -> usize {
    let clamped = depth.clamp(1, MAX_PIPELINE_DEPTH);
    if cfg!(debug_assertions) && depth > MAX_PIPELINE_DEPTH {
        eprintln!("xivm: pipeline depth {depth} clamped to {clamped} (MAX_PIPELINE_DEPTH)");
    }
    clamped
}

/// The `XIVM_PIPELINE` environment override, when set and parseable.
pub fn env_pipeline() -> Option<usize> {
    std::env::var("XIVM_PIPELINE").ok().and_then(|v| v.parse().ok())
}

/// A batch of jobs in flight: claimed through `cursor`, completion
/// tracked in `done`, first panic payload parked in `panic`.
struct Batch {
    jobs: Vec<Mutex<Option<Job<'static>>>>,
    cursor: AtomicUsize,
    done: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    /// Claims and runs jobs until the cursor is exhausted. Run by the
    /// submitting thread and by every pool worker.
    fn participate(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.jobs.len() {
                return;
            }
            let job = self.jobs[i].lock().expect("job slot unpoisoned").take();
            let Some(job) = job else { continue };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                let mut slot = self.panic.lock().expect("panic slot unpoisoned");
                slot.get_or_insert(payload);
            }
            let mut done = self.done.lock().expect("done count unpoisoned");
            *done += 1;
            if *done == self.jobs.len() {
                self.done_cv.notify_all();
            }
        }
    }
}

/// What the workers watch: the current batch (bumped `epoch` per
/// submission so a worker never re-enters a batch it already drained)
/// and the shutdown flag.
struct PoolState {
    batch: Option<Arc<Batch>>,
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    /// Threads ever spawned by this runtime — monotonic, exposed so
    /// tests can assert steady-state propagation spawns nothing.
    spawned: AtomicU64,
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("pool state unpoisoned");
            loop {
                if state.shutdown {
                    return;
                }
                match &state.batch {
                    Some(batch) if state.epoch != seen_epoch => {
                        seen_epoch = state.epoch;
                        break Arc::clone(batch);
                    }
                    _ => state = shared.work_ready.wait(state).expect("pool state unpoisoned"),
                }
            }
        };
        batch.participate();
    }
}

/// A long-lived worker pool for the per-view propagation phases.
///
/// Owned (through [`crate::multiview::MultiViewEngine`]) by
/// [`crate::database::Database`]; sized by the `.workers(n)` builder
/// knob / `XIVM_WORKERS` ([`effective_workers`]). A runtime of size 1
/// never spawns: every batch runs inline on the submitting thread,
/// preserving the zero-thread sequential path.
pub struct Runtime {
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Configured concurrency (submitting thread included): at most
    /// `size - 1` pool threads are ever started.
    size: usize,
    /// Serializes submissions: one batch in flight at a time.
    submit: Mutex<()>,
}

impl Runtime {
    /// A runtime of the given concurrency (clamped to at least 1).
    /// Spawns nothing — threads start lazily on the first batch that
    /// can use them.
    pub fn new(workers: usize) -> Self {
        Runtime {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState { batch: None, epoch: 0, shutdown: false }),
                work_ready: Condvar::new(),
                spawned: AtomicU64::new(0),
            }),
            threads: Mutex::new(Vec::new()),
            size: workers.max(1),
            submit: Mutex::new(()),
        }
    }

    /// Configured concurrency (the submitting thread counts as one).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Threads ever spawned by this runtime — monotonic. After the
    /// warm-up batch this stays flat: steady-state propagation spawns
    /// zero new threads.
    pub fn threads_spawned(&self) -> u64 {
        self.shared.spawned.load(Ordering::SeqCst)
    }

    /// Tops the pool up to `wanted` threads (never beyond
    /// `size - 1`).
    fn ensure_threads(&self, wanted: usize) {
        let target = wanted.min(self.size.saturating_sub(1));
        let mut threads = self.threads.lock().expect("thread list unpoisoned");
        while threads.len() < target {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("xivm-worker-{}", threads.len()))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
            self.shared.spawned.fetch_add(1, Ordering::SeqCst);
            threads.push(handle);
        }
    }

    /// Runs a batch of jobs to completion, fanning out across the pool
    /// (the calling thread works too). Returns only once every job has
    /// finished; if any job panicked, the first panic resumes here.
    ///
    /// With size 1 (or a single job) everything runs inline in order —
    /// no threads, no locking beyond the slots.
    pub(crate) fn run<'env>(&self, jobs: Vec<Job<'env>>) {
        if self.size <= 1 || jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let _one_batch_at_a_time = self.submit.lock().expect("submit lock unpoisoned");
        self.ensure_threads(jobs.len() - 1);

        let total = jobs.len();
        // SAFETY: the jobs borrow the caller's stack frame (`'env`).
        // Erasing the lifetime is sound because this function does not
        // return until `done == total`, i.e. every job closure has run
        // and returned — no job body executes after `'env` ends. A
        // worker that still holds the `Arc<Batch>` afterwards only
        // ever observes an exhausted cursor and empty (taken) job
        // slots; it never touches `'env` data again.
        let jobs: Vec<Mutex<Option<Job<'static>>>> = jobs
            .into_iter()
            .map(|job| {
                let job: Job<'static> = unsafe { std::mem::transmute(job) };
                Mutex::new(Some(job))
            })
            .collect();
        let batch = Arc::new(Batch {
            jobs,
            cursor: AtomicUsize::new(0),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });

        {
            let mut state = self.shared.state.lock().expect("pool state unpoisoned");
            state.batch = Some(Arc::clone(&batch));
            state.epoch += 1;
            self.shared.work_ready.notify_all();
        }
        batch.participate();
        let mut done = batch.done.lock().expect("done count unpoisoned");
        while *done < total {
            done = batch.done_cv.wait(done).expect("done count unpoisoned");
        }
        drop(done);
        self.shared.state.lock().expect("pool state unpoisoned").batch = None;

        let payload = batch.panic.lock().expect("panic slot unpoisoned").take();
        if let Some(payload) = payload {
            // Release the submission lock *before* unwinding, so a
            // panicked batch does not poison the pool for later ones.
            drop(_one_batch_at_a_time);
            resume_unwind(payload);
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state unpoisoned");
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.threads.get_mut().expect("thread list unpoisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_jobs(slots: &[Mutex<Option<usize>>]) -> Vec<Job<'_>> {
        slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot.lock().unwrap() = Some(i * i);
                }) as Job<'_>
            })
            .collect()
    }

    #[test]
    fn knob_resolution_clamps_and_prefers_explicit() {
        assert_eq!(effective_workers(Some(3)), 3);
        assert_eq!(effective_workers(Some(0)), 1);
        assert_eq!(effective_pipeline(Some(4)), 4);
        assert_eq!(effective_pipeline(Some(0)), 1);
    }

    #[test]
    fn batches_run_every_job_and_results_land_in_slots() {
        let rt = Runtime::new(4);
        for _ in 0..3 {
            let slots: Vec<Mutex<Option<usize>>> = (0..17).map(|_| Mutex::new(None)).collect();
            rt.run(counting_jobs(&slots));
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(*slot.lock().unwrap(), Some(i * i));
            }
        }
    }

    #[test]
    fn size_one_runs_inline_and_never_spawns() {
        let rt = Runtime::new(1);
        let slots: Vec<Mutex<Option<usize>>> = (0..8).map(|_| Mutex::new(None)).collect();
        rt.run(counting_jobs(&slots));
        assert!(slots.iter().all(|s| s.lock().unwrap().is_some()));
        assert_eq!(rt.threads_spawned(), 0, "sequential runtimes stay threadless");
    }

    #[test]
    fn construction_is_lazy_and_steady_state_spawns_nothing() {
        let rt = Runtime::new(3);
        assert_eq!(rt.threads_spawned(), 0, "new() must not spawn");
        let slots: Vec<Mutex<Option<usize>>> = (0..6).map(|_| Mutex::new(None)).collect();
        rt.run(counting_jobs(&slots));
        let warm = rt.threads_spawned();
        assert_eq!(warm, 2, "size 3 = submitter + 2 pool threads");
        for _ in 0..10 {
            let slots: Vec<Mutex<Option<usize>>> = (0..6).map(|_| Mutex::new(None)).collect();
            rt.run(counting_jobs(&slots));
        }
        assert_eq!(rt.threads_spawned(), warm, "steady state spawns zero new threads");
    }

    #[test]
    fn spawn_count_is_bounded_by_the_batch() {
        let rt = Runtime::new(8);
        let slots: Vec<Mutex<Option<usize>>> = (0..3).map(|_| Mutex::new(None)).collect();
        rt.run(counting_jobs(&slots));
        assert_eq!(rt.threads_spawned(), 2, "3 jobs need at most submitter + 2 threads");
    }

    #[test]
    fn single_job_batches_run_inline() {
        let rt = Runtime::new(4);
        let slot = Mutex::new(None);
        rt.run(vec![Box::new(|| {
            *slot.lock().unwrap() = Some(7usize);
        }) as Job<'_>]);
        assert_eq!(*slot.lock().unwrap(), Some(7));
        assert_eq!(rt.threads_spawned(), 0, "one job never needs a pool thread");
    }

    #[test]
    fn panicking_jobs_drain_the_batch_and_resume_on_the_caller() {
        let rt = Runtime::new(2);
        let survivors: Vec<Mutex<Option<usize>>> = (0..4).map(|_| Mutex::new(None)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut jobs: Vec<Job<'_>> = vec![Box::new(|| panic!("job blew up"))];
            jobs.extend(survivors.iter().enumerate().map(|(i, slot)| {
                Box::new(move || {
                    *slot.lock().unwrap() = Some(i);
                }) as Job<'_>
            }));
            rt.run(jobs);
        }));
        assert!(result.is_err(), "the job panic must resume on the submitter");
        assert!(
            survivors.iter().all(|s| s.lock().unwrap().is_some()),
            "the rest of the batch still completes"
        );
        // the pool survives a panicked batch
        let slots: Vec<Mutex<Option<usize>>> = (0..4).map(|_| Mutex::new(None)).collect();
        rt.run(counting_jobs(&slots));
        assert!(slots.iter().all(|s| s.lock().unwrap().is_some()));
    }

    #[test]
    fn drop_joins_all_workers() {
        let rt = Runtime::new(4);
        let slots: Vec<Mutex<Option<usize>>> = (0..8).map(|_| Mutex::new(None)).collect();
        rt.run(counting_jobs(&slots));
        drop(rt); // must not hang or leak: Drop joins the workers
        let rt2 = Runtime::new(2);
        let slots: Vec<Mutex<Option<usize>>> = (0..4).map(|_| Mutex::new(None)).collect();
        rt2.run(counting_jobs(&slots));
        assert!(slots.iter().all(|s| s.lock().unwrap().is_some()));
    }
}
