//! XPath abstract syntax.

use xivm_algebra::Axis;

/// A (possibly relative) location path: a sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationPath {
    pub steps: Vec<XStep>,
}

impl LocationPath {
    pub fn new(steps: Vec<XStep>) -> Self {
        LocationPath { steps }
    }

    /// Number of steps (the paper's "path length", Figs. 22–23 vary it).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// One step: axis, node test and zero or more predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XStep {
    pub axis: Axis,
    pub test: XNodeTest,
    pub preds: Vec<XPred>,
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XNodeTest {
    /// `name` — elements with this tag.
    Name(String),
    /// `*` — any element.
    Wildcard,
    /// `@name` — an attribute.
    Attribute(String),
    /// `text()` — text nodes.
    Text,
    /// `.` — the context node itself (only useful in predicates).
    SelfNode,
}

/// Predicates: existential paths, value comparisons, boolean
/// combinations (the L / LB / A / O / AO update classes of Appendix A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XPred {
    /// `[p]` — the relative path has at least one result.
    Exists(LocationPath),
    /// `[p = "c"]` — some result of `p` has string value `c`.
    ValEq(LocationPath, String),
    And(Box<XPred>, Box<XPred>),
    Or(Box<XPred>, Box<XPred>),
}

impl XPred {
    pub fn and(a: XPred, b: XPred) -> XPred {
        XPred::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: XPred, b: XPred) -> XPred {
        XPred::Or(Box::new(a), Box::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_len() {
        let p = LocationPath::new(vec![
            XStep { axis: Axis::Child, test: XNodeTest::Name("a".into()), preds: vec![] },
            XStep { axis: Axis::Descendant, test: XNodeTest::Wildcard, preds: vec![] },
        ]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
