//! Materialization strategies for the sub-pattern lattice
//! (Section 3.5; compared experimentally in Section 6.7).

/// Which lattice nodes the engine materializes and maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnowcapStrategy {
    /// The experiments' "Snowcaps" alternative: a minimal chain of
    /// snowcaps, one per level (pre-order prefixes of sizes 1…k−1),
    /// plus the view itself.
    MinimalChain,
    /// Every snowcap of the lattice (the upper bound of Section 3.5's
    /// discussion — expensive to keep, cheapest to read).
    AllSnowcaps,
    /// The experiments' "Leaves" alternative: nothing but the
    /// canonical relations; term R-parts are recomputed on the fly.
    LeavesOnly,
}

impl SnowcapStrategy {
    pub fn name(self) -> &'static str {
        match self {
            SnowcapStrategy::MinimalChain => "snowcaps",
            SnowcapStrategy::AllSnowcaps => "all-snowcaps",
            SnowcapStrategy::LeavesOnly => "leaves",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(SnowcapStrategy::MinimalChain.name(), "snowcaps");
        assert_eq!(SnowcapStrategy::LeavesOnly.name(), "leaves");
        assert_eq!(SnowcapStrategy::AllSnowcaps.name(), "all-snowcaps");
    }
}
