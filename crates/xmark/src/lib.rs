//! XMark-like workloads (Section 6.1).
//!
//! The paper evaluates on XMark [Schmidt et al. 2002] documents,
//! XMark queries as views, and XPathMark-derived updates
//! (Appendix A). This crate re-creates that workload deterministically:
//!
//! * [`generator`] — a seeded generator emitting the XMark auction
//!   schema subset the views and updates touch, scaled by a byte
//!   target;
//! * [`views`] — the view catalog (Q1, Q2, Q3, Q4, Q6, Q13, Q17 of
//!   Appendix A.6, parsed from their XQuery text) and the Q1
//!   annotation variants of Figure 24;
//! * [`updates`] — the update catalog of Appendix A (classes L, LB,
//!   A, O, AO), each usable as an insertion or a deletion;
//! * [`sizes`] — the document-size ladder of the experiments;
//! * [`dtd`] — the auction schema as a Figure 5 grammar, matching the
//!   generator exactly (the static analyzer's schema input).
//!
//! Scale knobs: `XIVM_FULL=1` switches [`sizes`] to the paper's
//! 100 KB – 50 MB ladder; the quick-mode defaults keep `cargo bench`
//! in minutes. The `xivm_xmark` table in `ARCHITECTURE.md`
//! (repository root) maps every module to its Appendix A anchor.

pub mod dtd;
pub mod generator;
pub mod sizes;
pub mod updates;
pub mod views;

pub use dtd::{xmark_dtd, XMARK_DTD};
pub use generator::{generate, generate_sized, XmarkConfig};
pub use updates::{
    all_updates, update_by_name, updates_for_view, BenchUpdate, UpdateClass, DEPTH_LADDER,
    X1_L_PRED,
};
pub use views::{q1_variant, view_pattern, view_query, Q1Variant, VIEW_NAMES};
