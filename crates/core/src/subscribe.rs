//! View change subscriptions: the changefeed side of the delta-first
//! API, with bounded queues and slow-consumer policies.
//!
//! [`Database::subscribe`] registers interest in one view and returns
//! a [`Subscription`] handle. From then on every successful commit
//! appends one [`DeltaEvent`] — the commit's sequence number plus the
//! view's [`ViewDelta`] — to the subscription's queue, *including*
//! commits that did not touch the view (their delta is empty), so a
//! consumer can verify it saw every commit: the drained sequence
//! numbers are consecutive.
//!
//! Queues are bounded when the database was built with
//! `builder().subscription_capacity(n)` (or `XIVM_SUB_CAPACITY`), or
//! when the subscription was opened with
//! [`Database::subscribe_with`]. A full queue triggers the
//! subscription's [`SlowConsumerPolicy`]:
//!
//! * [`Block`](SlowConsumerPolicy::Block) — the commit path waits
//!   until the consumer drains (backpressure; nothing is ever lost).
//! * [`DropAndMark`](SlowConsumerPolicy::DropAndMark) — the oldest
//!   queued event is discarded and the gap is reported as one
//!   [`Lagged`] marker carrying the exact `missed_range`; the
//!   consumer re-seeds from [`Database::snapshot`] and resumes at a
//!   gapless seq.
//! * [`Disconnect`](SlowConsumerPolicy::Disconnect) — the
//!   subscription is dropped outright; later commits pay nothing for
//!   it.
//!
//! The queue lives behind an `Arc` shared by the registry and the
//! handle, so [`Subscription::drain`] needs no database access — a
//! consumer thread can drain (and thereby release a `Block`ed
//! producer) while the commit path is mid-seal. [`Database::drain`]
//! remains the plain-delta entry point for never-lagging feeds; a
//! dropped interest is released with [`Database::unsubscribe`].
//!
//! [`Database::subscribe`]: crate::database::Database::subscribe
//! [`Database::subscribe_with`]: crate::database::Database::subscribe_with
//! [`Database::snapshot`]: crate::database::DbInner::snapshot
//! [`Database::drain`]: crate::database::Database::drain
//! [`Database::unsubscribe`]: crate::database::Database::unsubscribe
//! [`ViewDelta`]: crate::commit::ViewDelta

use crate::commit::{Commit, ViewDelta};
use crate::database::ViewHandle;
use std::collections::{HashMap, VecDeque};
use std::ops::RangeInclusive;
use std::sync::{Arc, Condvar, Mutex};

/// What the commit path does when a bounded subscription queue is
/// full. Unbounded subscriptions (the default) never consult this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum SlowConsumerPolicy {
    /// Wait for the consumer to drain. Nothing is ever lost, but a
    /// consumer that never drains stalls the commit path — only use
    /// this when a dedicated thread owns the [`Subscription`] handle
    /// (handle-level [`Subscription::drain`] takes no database lock,
    /// so the drain can always proceed).
    #[default]
    Block,
    /// Discard the oldest queued event and mark the stream with one
    /// [`Lagged`] event carrying the exact contiguous `missed_range`.
    /// The commit path never waits; the consumer re-seeds from a
    /// [`Database::snapshot`](crate::database::DbInner::snapshot)
    /// and resumes gapless at `snapshot.seq() + 1`.
    DropAndMark,
    /// Drop the subscription entirely: the queue is cleared, the
    /// registry prunes the entry at the next commit, and later
    /// commits pay nothing for it. The handle observes
    /// [`Subscription::is_disconnected`].
    Disconnect,
}

/// The gap marker a `DropAndMark` subscription receives in place of
/// the events its queue could not hold: the *exact* contiguous range
/// of commit sequence numbers that were discarded. Dropped events are
/// always the oldest queued, so the marker sits at the stream
/// position of the first missed commit and the events that follow it
/// resume at `missed_range.end() + 1` — the stream stays ordered,
/// just annotated with its hole.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lagged {
    /// Sequence numbers of the commits whose events were discarded,
    /// inclusive on both ends.
    pub missed_range: RangeInclusive<u64>,
}

/// One element of a subscription feed as drained by
/// [`Subscription::drain`]: either a commit's delta or a [`Lagged`]
/// gap marker.
#[derive(Debug, Clone)]
pub enum FeedEvent {
    /// One commit's delta for the subscribed view.
    Delta(DeltaEvent),
    /// The queue overflowed under
    /// [`SlowConsumerPolicy::DropAndMark`]; the carried range is
    /// exactly the commits this consumer missed.
    Lagged(Lagged),
}

impl FeedEvent {
    /// The delta payload, if this element is one.
    pub fn delta(&self) -> Option<&DeltaEvent> {
        match self {
            FeedEvent::Delta(e) => Some(e),
            FeedEvent::Lagged(_) => None,
        }
    }
}

/// One commit as seen by a subscription: the commit's sequence number
/// and the subscribed view's delta (empty when the commit did not
/// touch the view). The delta is `Arc`-shared: all subscriptions of
/// one view receive the same allocation, so fan-out to N subscribers
/// costs one delta clone, not N.
///
/// # The gapless-seq contract
///
/// Every successful commit appends exactly one event to every live
/// subscription — commits that did not touch the view included (their
/// delta is empty), and rejected commits emit nothing and consume no
/// sequence number. The `seq` values a consumer drains are therefore
/// *consecutive*: the first event of a subscription carries the seq
/// after [`Database::last_seq`] at subscribe time, and each following
/// event carries the previous seq plus one, with no reordering across
/// drains. This holds at every worker count and pipeline depth
/// (pipelined and async hosts seal commits strictly in order), so a
/// consumer that folds events in drain order reconstructs every
/// intermediate store state exactly — circuit sources and replicas
/// rely on it. The one permitted hole is an explicit [`Lagged`]
/// marker under [`SlowConsumerPolicy::DropAndMark`], which names the
/// missing seqs exactly; around it the contract still holds.
///
/// # Deferred views and coalesced events
///
/// A view under deferred maintenance still receives one event per
/// commit — its store genuinely does not change while changes batch,
/// so those events are empty. The refresh that folds the batch seals
/// its own commit, and that commit's event carries the whole batched
/// delta plus [`folded`](Self::folded): the exact range of earlier
/// seqs whose document changes it coalesces. Seqs therefore stay
/// consecutive even across a refresh; `folded` is metadata, never a
/// hole.
///
/// [`Database::last_seq`]: crate::database::DbInner::last_seq
#[derive(Debug, Clone, Default)]
pub struct DeltaEvent {
    pub seq: u64,
    /// `Some(lo..=hi)` when this event is the coalesced refresh of a
    /// deferred view: its delta folds the document changes of commits
    /// `lo..=hi` (whose own events for this view were empty) into one
    /// propagation. `None` for ordinary immediate-maintenance events.
    pub folded: Option<RangeInclusive<u64>>,
    pub delta: Arc<ViewDelta>,
}

/// A registered interest in one view's deltas. Only meaningful on the
/// database that issued it.
///
/// The handle owns a shared reference to its queue, so
/// [`Subscription::drain`] and [`Subscription::pending`] work without
/// any database access — move the handle into a consumer thread and
/// drain there while the owning thread keeps committing. The handle
/// is deliberately not `Clone`: exactly one consumer owns a feed.
#[derive(Debug)]
pub struct Subscription {
    pub(crate) id: u64,
    pub(crate) queue: Arc<SubQueue>,
}

impl Subscription {
    /// Takes every queued element — [`Lagged`] marker first if the
    /// queue overflowed, then the surviving deltas in seq order — and
    /// wakes a producer blocked on a full queue. Needs no database
    /// access: this is the call a dedicated consumer thread makes.
    pub fn drain(&self) -> Vec<FeedEvent> {
        self.queue.drain_feed()
    }

    /// Number of queued delta events (a pending [`Lagged`] marker is
    /// not counted).
    pub fn pending(&self) -> usize {
        self.queue.pending()
    }

    /// True once the queue overflowed under
    /// [`SlowConsumerPolicy::Disconnect`] (or the subscription was
    /// cancelled): no further events will arrive.
    pub fn is_disconnected(&self) -> bool {
        self.queue.disconnected()
    }

    /// The queue bound this subscription was opened with; `None` is
    /// unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.queue.capacity
    }

    /// The overflow policy this subscription was opened with.
    pub fn policy(&self) -> SlowConsumerPolicy {
        self.queue.policy
    }
}

/// The queue shared between the registry (producer side) and the
/// [`Subscription`] handle (consumer side).
#[derive(Debug)]
pub(crate) struct SubQueue {
    pub(crate) view: usize,
    capacity: Option<usize>,
    policy: SlowConsumerPolicy,
    state: Mutex<QueueState>,
    /// Signalled on drain and on disconnect: releases a producer
    /// waiting under [`SlowConsumerPolicy::Block`].
    space: Condvar,
}

#[derive(Debug, Default)]
struct QueueState {
    events: VecDeque<DeltaEvent>,
    /// Contiguous run of dropped seqs, oldest-first. Drops always pop
    /// the queue front, so the run can never fragment: its end is
    /// always exactly one below the oldest surviving event.
    lag: Option<(u64, u64)>,
    disconnected: bool,
}

impl SubQueue {
    fn new(view: usize, capacity: Option<usize>, policy: SlowConsumerPolicy) -> Self {
        SubQueue {
            view,
            // A zero capacity could never hold an event; treat it as 1
            // so `Block` stays drainable and `DropAndMark` keeps the
            // newest event.
            capacity: capacity.map(|c| c.max(1)),
            policy,
            state: Mutex::new(QueueState::default()),
            space: Condvar::new(),
        }
    }

    /// Appends one event, applying the overflow policy if the queue
    /// is full. Returns `false` when the subscription is (or becomes)
    /// disconnected and should be pruned.
    pub(crate) fn push(&self, event: DeltaEvent) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.disconnected {
            return false;
        }
        if let Some(cap) = self.capacity {
            while st.events.len() >= cap {
                match self.policy {
                    SlowConsumerPolicy::Block => {
                        st = self.space.wait(st).unwrap();
                        if st.disconnected {
                            return false;
                        }
                    }
                    SlowConsumerPolicy::DropAndMark => {
                        let dropped = st.events.pop_front().expect("cap >= 1");
                        st.lag = Some(match st.lag {
                            Some((lo, _)) => (lo, dropped.seq),
                            None => (dropped.seq, dropped.seq),
                        });
                    }
                    SlowConsumerPolicy::Disconnect => {
                        st.events.clear();
                        st.lag = None;
                        st.disconnected = true;
                        return false;
                    }
                }
            }
        }
        st.events.push_back(event);
        true
    }

    pub(crate) fn drain_feed(&self) -> Vec<FeedEvent> {
        let mut st = self.state.lock().unwrap();
        let extra = usize::from(st.lag.is_some());
        let mut out = Vec::with_capacity(st.events.len() + extra);
        if let Some((lo, hi)) = st.lag.take() {
            out.push(FeedEvent::Lagged(Lagged { missed_range: lo..=hi }));
        }
        out.extend(st.events.drain(..).map(FeedEvent::Delta));
        drop(st);
        self.space.notify_all();
        out
    }

    /// Plain-delta drain for feeds that can never lag (unbounded or
    /// `Block`). Panics if a [`Lagged`] marker is queued — losing the
    /// marker silently would forfeit the gapless-seq contract.
    pub(crate) fn drain_deltas(&self) -> Vec<DeltaEvent> {
        let mut st = self.state.lock().unwrap();
        if let Some((lo, hi)) = st.lag {
            panic!(
                "subscription lagged (missed commits {lo}..={hi}): drain the feed with \
                 Subscription::drain and re-seed from Database::snapshot"
            );
        }
        let expected = st.events.len();
        let out = std::mem::replace(&mut st.events, VecDeque::with_capacity(expected));
        drop(st);
        self.space.notify_all();
        out.into()
    }

    /// See [`SubscriptionRegistry::force_lag`]. Extends (or starts) the
    /// lag run to cover `lo..=hi` and drops any queued event the run
    /// would otherwise leapfrog, so drains still deliver the marker
    /// first and only events with seq strictly beyond it after.
    pub(crate) fn force_lag(&self, lo: u64, hi: u64) {
        let mut st = self.state.lock().unwrap();
        if st.disconnected {
            return;
        }
        let start = match st.lag.take() {
            // An older hole exists: events between it and `lo` would
            // sit *after* the merged marker, breaking resume-at-end+1.
            // Drop them all; the merged range covers everything.
            Some((l, _)) => {
                st.events.clear();
                l.min(lo)
            }
            None => {
                while st.events.back().is_some_and(|e| e.seq >= lo) {
                    st.events.pop_back();
                }
                lo
            }
        };
        st.lag = Some((start, hi));
        drop(st);
        self.space.notify_all();
    }

    pub(crate) fn pending(&self) -> usize {
        self.state.lock().unwrap().events.len()
    }

    pub(crate) fn disconnected(&self) -> bool {
        self.state.lock().unwrap().disconnected
    }

    /// Marks the queue dead and wakes any producer blocked on it —
    /// called from `unsubscribe` *before* the registry entry goes
    /// away, so cancelling a `Block`ed subscription can never wedge
    /// the commit path.
    pub(crate) fn disconnect(&self) {
        let mut st = self.state.lock().unwrap();
        st.events.clear();
        st.lag = None;
        st.disconnected = true;
        drop(st);
        self.space.notify_all();
    }
}

/// The subscriptions of one database. Owned by `Database`, which
/// forwards every commit here. Cancelled subscriptions are removed
/// outright — ids are never reused (monotonic counter), so a stale
/// handle still panics instead of aliasing a newer subscription, and
/// a long-lived database under subscribe/unsubscribe churn holds only
/// the live entries. Policy-disconnected entries are pruned lazily at
/// the next commit.
#[derive(Default)]
pub(crate) struct SubscriptionRegistry {
    next_id: u64,
    subs: HashMap<u64, Arc<SubQueue>>,
}

impl SubscriptionRegistry {
    pub(crate) fn subscribe(
        &mut self,
        view: ViewHandle,
        capacity: Option<usize>,
        policy: SlowConsumerPolicy,
    ) -> Subscription {
        let id = self.next_id;
        self.next_id += 1;
        let queue = Arc::new(SubQueue::new(view.index(), capacity, policy));
        self.subs.insert(id, Arc::clone(&queue));
        Subscription { id, queue }
    }

    /// Appends one event per live subscription for a finished commit.
    /// Every commit reports on every view (no-op commits carry empty
    /// deltas), so sequence numbers stay gapless. Each distinct view's
    /// delta is cloned once and shared across its subscribers. A full
    /// `Block` queue makes this call wait for its consumer; the other
    /// policies never wait, so a stalled reader cannot wedge the
    /// commit path unless it explicitly opted into backpressure.
    pub(crate) fn record(&mut self, commit: &Commit) {
        self.subs.retain(|_, q| !q.disconnected());
        if self.subs.is_empty() {
            return;
        }
        let per_view = commit.per_view();
        let mut shared: HashMap<usize, Arc<ViewDelta>> = HashMap::new();
        for queue in self.subs.values() {
            let delta = Arc::clone(shared.entry(queue.view).or_insert_with(|| {
                Arc::new(per_view.get(queue.view).map(|(_, r)| r.delta.clone()).unwrap_or_default())
            }));
            let folded = per_view.get(queue.view).and_then(|(_, r)| r.coalesced.clone());
            queue.push(DeltaEvent { seq: commit.seq, folded, delta });
        }
    }

    /// Forces a [`Lagged`] marker into every subscription of `view`,
    /// covering `lo..=hi`. This is the crash-recovery escape hatch:
    /// when the service thread recovers a panicked window by
    /// recomputing stores, a deferred view's batched-but-unrefreshed
    /// changes land without a refresh commit, so its feeds are told
    /// explicitly which seqs they can no longer reconstruct and
    /// re-seed from a snapshot. Queued events that the forced range
    /// touches (or that follow an earlier lag run) are dropped so the
    /// stream stays marker-first, then strictly beyond the marker.
    pub(crate) fn force_lag(&mut self, view: usize, lo: u64, hi: u64) {
        for queue in self.subs.values() {
            if queue.view == view {
                queue.force_lag(lo, hi);
            }
        }
    }

    /// Number of live (not yet cancelled or policy-disconnected)
    /// subscriptions. This is exactly the fan-out the next commit
    /// pays — a pipelined host records commits strictly in sequence
    /// order, so an unsubscribe between two overlapped commits takes
    /// effect at the next sealed commit, never mid-stream.
    pub(crate) fn live(&self) -> usize {
        self.subs.values().filter(|q| !q.disconnected()).count()
    }

    pub(crate) fn unsubscribe(&mut self, sub: Subscription) {
        let was_disconnected = sub.queue.disconnected();
        sub.queue.disconnect();
        let existed = self.subs.remove(&sub.id).is_some();
        assert!(existed || was_disconnected, "subscription from this database, not yet cancelled");
    }
}
