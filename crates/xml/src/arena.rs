//! Chunked copy-on-write node arena.
//!
//! [`Document`](crate::Document) snapshots need to be cheap: the MVCC
//! layer clones the document once per pipelined commit and once per
//! reader snapshot. A flat `Vec<Node>` would make every clone O(nodes),
//! so the arena stores nodes in fixed-size chunks behind [`Arc`]s —
//! cloning an [`Arena`] copies only the chunk *pointers* (O(nodes /
//! [`CHUNK_SIZE`])), and the first mutation of a chunk after a clone
//! copies just that chunk ([`Arc::make_mut`]), never the whole tree.
//! A commit therefore pays a deep copy only for the spine of chunks
//! its PUL actually touches, while every outstanding snapshot keeps
//! reading the frozen originals.

use crate::node::{Node, NodeId};
use std::sync::Arc;

/// log2 of [`CHUNK_SIZE`]; indexing is a shift + mask.
const CHUNK_BITS: usize = 8;
/// Nodes per chunk. Small enough that a copy-on-write of one chunk is
/// cheap, large enough that a snapshot of an XMark-sized document is a
/// few hundred pointer copies.
pub const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: usize = CHUNK_SIZE - 1;

/// A growable node store with O(chunks) clone and per-chunk
/// copy-on-write (see the module docs).
#[derive(Debug, Default, Clone)]
pub struct Arena {
    chunks: Vec<Arc<Vec<Node>>>,
    len: usize,
}

impl Arena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots ever allocated (dead nodes included).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared read access; panics on an out-of-range index like a
    /// `Vec` would.
    #[inline]
    pub fn get(&self, index: usize) -> &Node {
        assert!(index < self.len, "node index {index} out of bounds ({})", self.len);
        &self.chunks[index >> CHUNK_BITS][index & CHUNK_MASK]
    }

    /// Mutable access with copy-on-write: when the containing chunk is
    /// shared with a snapshot, it is deep-copied first — the snapshot
    /// keeps the frozen original.
    #[inline]
    pub fn get_mut(&mut self, index: usize) -> &mut Node {
        assert!(index < self.len, "node index {index} out of bounds ({})", self.len);
        &mut Arc::make_mut(&mut self.chunks[index >> CHUNK_BITS])[index & CHUNK_MASK]
    }

    /// Appends a node, returning its id. Appending into a shared tail
    /// chunk copies that chunk first (the snapshot must not see the
    /// new node).
    pub fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.len as u32);
        if self.len & CHUNK_MASK == 0 {
            let mut chunk = Vec::with_capacity(CHUNK_SIZE);
            chunk.push(node);
            self.chunks.push(Arc::new(chunk));
        } else {
            Arc::make_mut(self.chunks.last_mut().expect("tail chunk exists")).push(node);
        }
        self.len += 1;
        id
    }

    /// All nodes in allocation order (dead ones included).
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// How many chunks two arenas physically share (same `Arc`). A
    /// fresh clone shares everything; each mutated chunk drops out.
    /// Diagnostic for the copy-on-write tests and benches.
    pub fn shared_chunks_with(&self, other: &Arena) -> usize {
        self.chunks.iter().zip(&other.chunks).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Total chunk count.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

impl std::ops::Index<usize> for Arena {
    type Output = Node;

    #[inline]
    fn index(&self, index: usize) -> &Node {
        self.get(index)
    }
}

impl FromIterator<Node> for Arena {
    fn from_iter<I: IntoIterator<Item = Node>>(iter: I) -> Self {
        let mut arena = Arena::new();
        for node in iter {
            arena.push(node);
        }
        arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelId;
    use crate::node::NodeKind;

    fn node(ord: u64) -> Node {
        Node {
            kind: NodeKind::Element,
            label: LabelId(0),
            ord,
            parent: None,
            children: Vec::new(),
            text: None,
            alive: true,
            max_child_ord: 0,
        }
    }

    #[test]
    fn push_and_index_roundtrip_across_chunks() {
        let mut a = Arena::new();
        let n = CHUNK_SIZE * 2 + 7;
        for i in 0..n {
            assert_eq!(a.push(node(i as u64)).index(), i);
        }
        assert_eq!(a.len(), n);
        assert_eq!(a.chunk_count(), 3);
        for i in 0..n {
            assert_eq!(a[i].ord, i as u64);
        }
        assert_eq!(a.iter().count(), n);
    }

    #[test]
    fn clone_shares_all_chunks_until_written() {
        let mut a = Arena::new();
        for i in 0..CHUNK_SIZE * 3 {
            a.push(node(i as u64));
        }
        let snap = a.clone();
        assert_eq!(a.shared_chunks_with(&snap), 3, "a clone shares every chunk");

        // Mutating one node copies exactly its chunk.
        a.get_mut(CHUNK_SIZE + 1).alive = false;
        assert_eq!(a.shared_chunks_with(&snap), 2);
        assert!(snap[CHUNK_SIZE + 1].alive, "the snapshot keeps the frozen original");
        assert!(!a[CHUNK_SIZE + 1].alive);
    }

    #[test]
    fn push_after_clone_leaves_snapshot_fixed() {
        let mut a = Arena::new();
        for i in 0..CHUNK_SIZE + 3 {
            a.push(node(i as u64));
        }
        let snap = a.clone();
        a.push(node(999));
        assert_eq!(snap.len(), CHUNK_SIZE + 3);
        assert_eq!(a.len(), CHUNK_SIZE + 4);
        assert_eq!(a[CHUNK_SIZE + 3].ord, 999);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let a = Arena::new();
        let _ = a.get(0);
    }
}
