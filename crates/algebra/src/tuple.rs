//! Tuples and their fields.

use std::sync::Arc;
use xivm_xml::DeweyId;

/// One tuple field: the data a view stores for one bound pattern node.
///
/// The structural ID is always present (the maintenance algorithms need
/// it to run structural joins and the `PIMT`/`PDMT` ancestor checks);
/// `val` and `cont` are populated only when the view's annotations ask
/// for them. Strings are `Arc`-shared because the same node frequently
/// appears in many tuples.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    pub id: DeweyId,
    pub val: Option<Arc<str>>,
    pub cont: Option<Arc<str>>,
}

impl Field {
    pub fn id_only(id: DeweyId) -> Self {
        Field { id, val: None, cont: None }
    }

    pub fn new(id: DeweyId, val: Option<Arc<str>>, cont: Option<Arc<str>>) -> Self {
        Field { id, val, cont }
    }
}

/// A tuple over a view schema: one [`Field`] per view column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    fields: Vec<Field>,
}

impl Tuple {
    pub fn new(fields: Vec<Field>) -> Self {
        Tuple { fields }
    }

    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    pub fn field_mut(&mut self, i: usize) -> &mut Field {
        &mut self.fields[i]
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Concatenates two tuples (used by products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut fields = Vec::with_capacity(self.fields.len() + other.fields.len());
        fields.extend_from_slice(&self.fields);
        fields.extend_from_slice(&other.fields);
        Tuple { fields }
    }

    /// Keeps only the listed columns, in the given order.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple { fields: cols.iter().map(|&c| self.fields[c].clone()).collect() }
    }

    /// The identity key of a tuple: its sequence of structural IDs.
    /// Two tuples binding the same document nodes are the same view
    /// tuple regardless of cached val/cont strings.
    pub fn id_key(&self) -> Vec<DeweyId> {
        self.fields.iter().map(|f| f.id.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_xml::{dewey::Step, LabelId};

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    #[test]
    fn concat_and_project() {
        let t1 = Tuple::new(vec![Field::id_only(id(&[(0, 1)]))]);
        let t2 = Tuple::new(vec![
            Field::id_only(id(&[(0, 1), (1, 2)])),
            Field::id_only(id(&[(0, 1), (2, 3)])),
        ]);
        let t = t1.concat(&t2);
        assert_eq!(t.arity(), 3);
        let p = t.project(&[2, 0]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.field(0).id, id(&[(0, 1), (2, 3)]));
        assert_eq!(p.field(1).id, id(&[(0, 1)]));
    }

    #[test]
    fn id_key_ignores_val_and_cont() {
        let a = Tuple::new(vec![Field::new(id(&[(0, 1)]), Some("x".into()), None)]);
        let b = Tuple::new(vec![Field::new(id(&[(0, 1)]), None, Some("<a/>".into()))]);
        assert_eq!(a.id_key(), b.id_key());
        assert_ne!(a, b);
    }
}
