//! Figures 29–32: materializing snowcaps versus leaves only
//! (Section 6.7), for views Q4 and Q6 across document sizes.
//!
//! Reports, per strategy: (R) the time to evaluate the maintenance
//! terms ("Execute Update"), (U) the time to update the materialized
//! structures ("Update Lattice"), and their total. Expected shape:
//! the snowcap strategy beats leaves-only, with a larger gap for Q6
//! than for Q4.

use xivm_bench::{averaged, figure_header, ms, repetitions, row};
use xivm_core::SnowcapStrategy;
use xivm_xmark::sizes::ladder;
use xivm_xmark::{generate_sized, update_by_name, view_pattern};

fn main() {
    let reps = repetitions();
    for (figure, view) in [("Figures 29/31", "Q4"), ("Figures 30/32", "Q6")] {
        figure_header(
            figure,
            &format!("snowcaps vs leaves for view {view}: eval (R), update (U), total"),
        );
        row(&[
            "doc_size".to_owned(),
            "strategy".to_owned(),
            "eval_terms_ms(R)".to_owned(),
            "update_structures_ms(U)".to_owned(),
            "total_ms".to_owned(),
        ]);
        let pattern = view_pattern(view);
        // the update used for maintenance load: the view's L-class entry
        let update = if view == "Q4" { update_by_name("X2_L") } else { update_by_name("E6_L") };
        for size in ladder() {
            let doc = generate_sized(size.bytes);
            for strategy in [SnowcapStrategy::MinimalChain, SnowcapStrategy::LeavesOnly] {
                let stmt = update.insert_stmt();
                let t = averaged(reps, || {
                    xivm_bench::run_once(&doc, &pattern, &stmt, strategy).timings
                });
                let r = ms(t.execute_update);
                let u = ms(t.update_lattice);
                row(&[
                    size.label.to_owned(),
                    strategy.name().to_owned(),
                    format!("{r:.3}"),
                    format!("{u:.3}"),
                    format!("{:.3}", r + u),
                ]);
            }
        }
    }
}
