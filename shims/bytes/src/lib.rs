//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this crate
//! re-implements the (small) subset of the real `bytes` API that the
//! workspace uses: [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`]
//! traits. The types are plain `Vec<u8>` wrappers — none of the
//! zero-copy reference counting of the real crate, but the same
//! observable behaviour for encode/decode round-trips.

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub const fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    fn put_u8(&mut self, val: u8);

    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, val: u8) {
        self.data.push(val);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, val: u8) {
        self.push(val);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_freeze() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u8(1);
        buf.put_slice(&[2, 3]);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
    }

    #[test]
    fn slice_buf_cursor() {
        let mut cursor: &[u8] = &[9, 8, 7];
        assert!(cursor.has_remaining());
        assert_eq!(cursor.get_u8(), 9);
        assert_eq!(cursor.get_u8(), 8);
        assert_eq!(cursor.get_u8(), 7);
        assert!(!cursor.has_remaining());
    }
}
