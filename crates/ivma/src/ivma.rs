//! IVMA — node-at-a-time incremental view maintenance, after Sawires
//! et al. \[2005\].
//!
//! IVMA propagates updates that add or delete *exactly one node* at a
//! time. A statement-level update therefore turns into as many IVMA
//! calls as it touches nodes: inserted forests are replayed node by
//! node (each insertion immediately propagated by navigating the
//! document around the new node), and deleted subtrees are peeled off
//! leaf-first. There are no Δ tables, no term algebra and no
//! structural joins — this is the per-node baseline Figure 28
//! contrasts with the bulk PINT/PIMT pipeline.
//!
//! Node-level propagation has a subtlety the bulk algorithms avoid: a
//! *text* node insertion or removal changes the string values of all
//! its ancestors, which can flip `[val = c]` predicates on view nodes
//! and thereby add or remove embeddings without any structural change.
//! Each text event therefore diffs predicate truth on the ancestor
//! chain and patches the affected embeddings.

use std::collections::HashMap;
use std::sync::Arc;
use xivm_algebra::{Field, Tuple};
use xivm_core::ViewStore;
use xivm_pattern::compile::view_tuples;
use xivm_pattern::{NodeTest, PatternNodeId, TreePattern};
use xivm_update::{compute_pul, AtomicOp, UpdateStatement};
use xivm_xml::{parse_document, Document, NodeId, NodeKind, XmlError};

/// Predicate-truth overrides for (pattern position, document node)
/// pairs, used to re-evaluate embeddings "as of before" a text event.
type PredOverride = HashMap<(usize, NodeId), bool>;

/// A materialized view maintained node-at-a-time.
pub struct IvmaView {
    pattern: TreePattern,
    order: Vec<PatternNodeId>,
    /// Positions (into `order`) carrying a value predicate.
    pred_positions: Vec<usize>,
    store: ViewStore,
}

impl IvmaView {
    pub fn new(doc: &Document, pattern: TreePattern) -> Self {
        let store = ViewStore::from_counted(&pattern, view_tuples(doc, &pattern));
        let order = pattern.preorder();
        let pred_positions = order
            .iter()
            .enumerate()
            .filter(|(_, &n)| pattern.node(n).val_pred.is_some())
            .map(|(i, _)| i)
            .collect();
        IvmaView { pattern, order, pred_positions, store }
    }

    pub fn store(&self) -> &ViewStore {
        &self.store
    }

    /// Applies an insertion statement one node at a time. Returns the
    /// number of single-node IVMA propagation calls made.
    pub fn apply_insert(
        &mut self,
        doc: &mut Document,
        stmt: &UpdateStatement,
    ) -> Result<usize, XmlError> {
        let pul = compute_pul(doc, stmt);
        let mut calls = 0;
        for op in &pul.ops {
            let AtomicOp::InsertInto { target, forest } = op else {
                continue;
            };
            let Some(parent) = doc.find_node(target) else {
                continue;
            };
            calls += self.replay_forest(doc, parent, forest)?;
        }
        Ok(calls)
    }

    /// Applies a deletion statement one node at a time (leaf-first).
    /// Returns the number of single-node propagation calls made.
    pub fn apply_delete(
        &mut self,
        doc: &mut Document,
        stmt: &UpdateStatement,
    ) -> Result<usize, XmlError> {
        let pul = compute_pul(doc, stmt);
        let mut calls = 0;
        for op in &pul.ops {
            let AtomicOp::Delete { node } = op else {
                continue;
            };
            let Some(target) = doc.find_node(node) else {
                continue;
            };
            // post-order: children before parents, so every removal is
            // a single (by-then) leaf node
            let mut postorder = doc.descendants_or_self(target);
            postorder.reverse();
            for n in postorder {
                calls += 1;
                if doc.node(n).kind == NodeKind::Text {
                    let parent = doc.parent_of(n).expect("text has a parent");
                    let before = self.pred_truth_on_chain(doc, parent);
                    doc.remove_subtree(n)?;
                    self.apply_pred_flips(doc, parent, before);
                } else {
                    self.propagate_single_delete(doc, n);
                    doc.remove_subtree(n)?;
                }
            }
        }
        Ok(calls)
    }

    /// Copies the forest under `parent` node by node, propagating each
    /// node individually.
    fn replay_forest(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
        forest: &str,
    ) -> Result<usize, XmlError> {
        let scratch = parse_document(&format!("<ivma-scratch>{forest}</ivma-scratch>"))?;
        let sroot = scratch.root().expect("scratch root");
        let mut mapping: Vec<Option<NodeId>> = vec![None; scratch.arena_len()];
        mapping[sroot.index()] = Some(parent);
        let mut calls = 0;
        for sn in scratch.descendants_or_self(sroot) {
            if sn == sroot {
                continue;
            }
            let sparent = scratch.parent_of(sn).expect("non-root");
            let real_parent = mapping[sparent.index()].expect("parents visited first");
            let node = &scratch.node(sn);
            calls += 1;
            match node.kind {
                NodeKind::Element => {
                    let new = doc.append_element(real_parent, scratch.label_name(node.label))?;
                    mapping[sn.index()] = Some(new);
                    self.propagate_single_insert(doc, new);
                }
                NodeKind::Attribute => {
                    let new = doc.append_attribute(
                        real_parent,
                        scratch.label_name(node.label).trim_start_matches('@'),
                        node.text.as_deref().unwrap_or(""),
                    )?;
                    mapping[sn.index()] = Some(new);
                    self.propagate_single_insert(doc, new);
                }
                NodeKind::Text => {
                    let before = self.pred_truth_on_chain(doc, real_parent);
                    let new = doc.append_text(real_parent, node.text.as_deref().unwrap_or(""))?;
                    mapping[sn.index()] = Some(new);
                    self.apply_pred_flips(doc, real_parent, before);
                }
            }
        }
        Ok(calls)
    }

    // ------------------------------------------------------------------
    // Structural single-node propagation
    // ------------------------------------------------------------------

    fn propagate_single_insert(&mut self, doc: &Document, node: NodeId) {
        for emb in self.embeddings_through(doc, node) {
            let tuple = self.project(doc, &emb);
            self.store.add(tuple, 1);
        }
    }

    fn propagate_single_delete(&mut self, doc: &Document, node: NodeId) {
        for emb in self.embeddings_through(doc, node) {
            let key = self.key_of(doc, &emb);
            self.store.remove_derivations(&key, 1);
        }
    }

    /// All embeddings in which `node` is the image of at least one
    /// pattern node, each counted once (anchored at the first pattern
    /// position binding it).
    fn embeddings_through(&self, doc: &Document, node: NodeId) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        for pos in 0..self.order.len() {
            if !self.label_matches(doc, node, self.order[pos])
                || !self.pred_ok(doc, pos, node, None)
            {
                continue;
            }
            let mut assignment = vec![None; self.order.len()];
            assignment[pos] = Some(node);
            let mut found = Vec::new();
            self.extend(doc, 0, pos, node, None, &mut assignment, &mut found);
            for emb in found {
                // dedup: anchored at the FIRST position binding the node
                if emb.iter().position(|&n| n == node) == Some(pos) {
                    out.push(emb);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Value-predicate flips on text events
    // ------------------------------------------------------------------

    /// Truth of every value predicate on the ancestor-or-self chain of
    /// `from`, as of the current document state.
    fn pred_truth_on_chain(&self, doc: &Document, from: NodeId) -> Vec<((usize, NodeId), bool)> {
        let mut out = Vec::new();
        let mut cur = Some(from);
        while let Some(n) = cur {
            for &pos in &self.pred_positions {
                if self.label_matches(doc, n, self.order[pos]) {
                    out.push(((pos, n), self.pred_ok(doc, pos, n, None)));
                }
            }
            cur = doc.parent_of(n);
        }
        out
    }

    /// After a text change below `from`, diffs predicate truth and
    /// patches the embeddings that appeared or disappeared.
    fn apply_pred_flips(
        &mut self,
        doc: &Document,
        _from: NodeId,
        before: Vec<((usize, NodeId), bool)>,
    ) {
        let mut gained: Vec<(usize, NodeId)> = Vec::new();
        let mut lost: Vec<(usize, NodeId)> = Vec::new();
        let mut before_map: PredOverride = HashMap::new();
        for ((pos, n), was) in before {
            before_map.insert((pos, n), was);
            let now = self.pred_ok(doc, pos, n, None);
            if was && !now {
                lost.push((pos, n));
            } else if !was && now {
                gained.push((pos, n));
            }
        }
        // Embeddings that were valid before and use ≥1 lost pair:
        // enumerate in the before-truth world, anchored at their first
        // lost pair.
        for (i, &(pos, n)) in lost.iter().enumerate() {
            let mut assignment = vec![None; self.order.len()];
            assignment[pos] = Some(n);
            let mut found = Vec::new();
            self.extend(doc, 0, pos, n, Some(&before_map), &mut assignment, &mut found);
            for emb in found {
                if first_pair_index(&lost, &emb) == Some(i) {
                    let key = self.key_of(doc, &emb);
                    self.store.remove_derivations(&key, 1);
                }
            }
        }
        // Embeddings valid now that use ≥1 gained pair.
        for (i, &(pos, n)) in gained.iter().enumerate() {
            let mut assignment = vec![None; self.order.len()];
            assignment[pos] = Some(n);
            let mut found = Vec::new();
            self.extend(doc, 0, pos, n, None, &mut assignment, &mut found);
            for emb in found {
                if first_pair_index(&gained, &emb) == Some(i) {
                    let tuple = self.project(doc, &emb);
                    self.store.add(tuple, 1);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Anchored backtracking search
    // ------------------------------------------------------------------

    /// Backtracking over pattern pre-order with one pre-assigned
    /// (anchored) position. Candidates for pattern ancestors of the
    /// anchor come from the document ancestors of the anchored node
    /// (upward navigation); everything else navigates downward from
    /// its assigned parent. `overrides` substitutes predicate truth
    /// for re-evaluating the pre-event state.
    #[allow(clippy::too_many_arguments)]
    fn extend(
        &self,
        doc: &Document,
        pos: usize,
        anchor_pos: usize,
        anchor: NodeId,
        overrides: Option<&PredOverride>,
        assignment: &mut Vec<Option<NodeId>>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if pos == self.order.len() {
            out.push(assignment.iter().map(|a| a.expect("complete")).collect());
            return;
        }
        if assignment[pos].is_some() {
            if self.edge_ok(doc, pos, assignment) {
                self.extend(doc, pos + 1, anchor_pos, anchor, overrides, assignment, out);
            }
            return;
        }
        let pnode = self.order[pos];
        let anchor_pnode = self.order[anchor_pos];
        let candidates: Vec<NodeId> = if self.pattern.is_ancestor(pnode, anchor_pnode) {
            // upward navigation
            let mut anc = Vec::new();
            let mut cur = doc.parent_of(anchor);
            while let Some(p) = cur {
                anc.push(p);
                cur = doc.parent_of(p);
            }
            anc
        } else {
            let parent_pnode = self.pattern.node(pnode).parent.expect("non-root or anchored");
            let ppos = self.order.iter().position(|&n| n == parent_pnode).expect("before");
            let base = assignment[ppos].expect("parent assigned first");
            match self.pattern.node(pnode).edge {
                xivm_algebra::Axis::Child => doc.children_of(base).to_vec(),
                xivm_algebra::Axis::Descendant => {
                    doc.descendants_or_self(base).into_iter().filter(|&n| n != base).collect()
                }
            }
        };
        for c in candidates {
            if !self.label_matches(doc, c, pnode) || !self.pred_ok(doc, pos, c, overrides) {
                continue;
            }
            assignment[pos] = Some(c);
            if self.edge_ok(doc, pos, assignment) {
                self.extend(doc, pos + 1, anchor_pos, anchor, overrides, assignment, out);
            }
            assignment[pos] = None;
        }
    }

    /// Checks the structural edge between `pos` and its pattern parent
    /// under the current assignment, plus document-root anchoring.
    fn edge_ok(&self, doc: &Document, pos: usize, assignment: &[Option<NodeId>]) -> bool {
        if pos == 0 {
            let root_edge = self.pattern.node(self.order[0]).edge;
            if root_edge == xivm_algebra::Axis::Child {
                return doc.root() == assignment[0];
            }
            return true;
        }
        let pnode = self.order[pos];
        let parent_pnode = self.pattern.node(pnode).parent.expect("non-root");
        let ppos = self.order.iter().position(|&n| n == parent_pnode).expect("before");
        let (Some(upper), Some(lower)) = (assignment[ppos], assignment[pos]) else {
            return true; // anchor's parent not yet bound: checked when bound
        };
        let upper_id = doc.dewey(upper);
        let lower_id = doc.dewey(lower);
        match self.pattern.node(pnode).edge {
            xivm_algebra::Axis::Child => upper_id.is_parent_of(&lower_id),
            xivm_algebra::Axis::Descendant => upper_id.is_ancestor_of(&lower_id),
        }
    }

    fn label_matches(&self, doc: &Document, n: NodeId, pnode: PatternNodeId) -> bool {
        let p = self.pattern.node(pnode);
        let node = doc.node(n);
        match &p.test {
            NodeTest::Name(name) => {
                (node.kind == NodeKind::Element || node.kind == NodeKind::Attribute)
                    && doc.label_name(node.label) == name
            }
            NodeTest::Wildcard => node.kind == NodeKind::Element,
        }
    }

    fn pred_ok(
        &self,
        doc: &Document,
        pos: usize,
        n: NodeId,
        overrides: Option<&PredOverride>,
    ) -> bool {
        let Some(pred) = &self.pattern.node(self.order[pos]).val_pred else {
            return true;
        };
        if let Some(map) = overrides {
            if let Some(&truth) = map.get(&(pos, n)) {
                return truth;
            }
        }
        doc.value(n) == *pred
    }

    fn key_of(&self, doc: &Document, emb: &[NodeId]) -> Vec<xivm_xml::DeweyId> {
        self.pattern
            .stored_nodes()
            .iter()
            .map(|&s| {
                let pos = self.order.iter().position(|&n| n == s).expect("stored in order");
                doc.dewey(emb[pos])
            })
            .collect()
    }

    fn project(&self, doc: &Document, emb: &[NodeId]) -> Tuple {
        let fields = self
            .pattern
            .stored_nodes()
            .iter()
            .map(|&s| {
                let pos = self.order.iter().position(|&n| n == s).expect("stored in order");
                let n = emb[pos];
                let ann = self.pattern.node(s).ann;
                Field::new(
                    doc.dewey(n),
                    ann.val.then(|| Arc::from(doc.value(n).as_str())),
                    ann.cont.then(|| Arc::from(doc.content(n).as_str())),
                )
            })
            .collect();
        Tuple::new(fields)
    }
}

/// Index of the first pair `(pos, node)` of `pairs` used by the
/// embedding.
fn first_pair_index(pairs: &[(usize, NodeId)], emb: &[NodeId]) -> Option<usize> {
    pairs.iter().position(|&(pos, node)| emb[pos] == node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;

    fn check_insert(doc_xml: &str, pattern: &str, path: &str, xml: &str) -> usize {
        let mut doc = parse_document(doc_xml).unwrap();
        let p = parse_pattern(pattern).unwrap();
        let mut view = IvmaView::new(&doc, p.clone());
        let stmt = UpdateStatement::insert(path, xml).unwrap();
        let calls = view.apply_insert(&mut doc, &stmt).unwrap();
        let expected = ViewStore::from_counted(&p, view_tuples(&doc, &p));
        assert!(
            view.store().same_content_as(&expected),
            "{pattern} after insert {xml} into {path}:\n{}",
            view.store().diff_description(&expected)
        );
        calls
    }

    fn check_delete(doc_xml: &str, pattern: &str, path: &str) -> usize {
        let mut doc = parse_document(doc_xml).unwrap();
        let p = parse_pattern(pattern).unwrap();
        let mut view = IvmaView::new(&doc, p.clone());
        let stmt = UpdateStatement::delete(path).unwrap();
        let calls = view.apply_delete(&mut doc, &stmt).unwrap();
        let expected = ViewStore::from_counted(&p, view_tuples(&doc, &p));
        assert!(
            view.store().same_content_as(&expected),
            "{pattern} after delete {path}:\n{}",
            view.store().diff_description(&expected)
        );
        calls
    }

    #[test]
    fn one_call_per_inserted_node() {
        // the Figure 28 workload: a root with four children = 5 calls
        let calls = check_insert("<a><b/></a>", "//a{id}//b{id}", "//a", "<b><x/><x/><x/><x/></b>");
        assert_eq!(calls, 5);
    }

    #[test]
    fn insert_chain_matches_bulk_semantics() {
        check_insert("<a><b/></a>", "//a{id}//b{id}//c{id}", "//b", "<c><c/></c>");
        check_insert("<a><c><b/></c></a>", "//a{id}[//c]//b{id}", "//c", "<b/>");
    }

    #[test]
    fn repeated_label_patterns_do_not_double_count() {
        // //a//a: a new inner a participates as both pattern positions
        check_insert("<a><a/></a>", "//a{id}//a{id}", "//a", "<a/>");
    }

    #[test]
    fn delete_peels_subtrees_leaf_first() {
        let calls = check_delete("<a><c><b/><b/></c><f><b/></f></a>", "//a{id}//b{id}", "//c");
        assert_eq!(calls, 3, "c and its two b children");
    }

    #[test]
    fn delete_with_existential_branch() {
        check_delete("<a><c><b/></c><f><b/></f></a>", "//a{id}[//b]", "//c");
        check_delete("<a><c><b/></c><f><b/></f></a>", "//a{id}[//b]", "//c//b");
    }

    #[test]
    fn document_rooted_patterns() {
        check_insert(
            "<site><people><person/></people></site>",
            "/site{id}/people{id}/person{id}",
            "/site/people",
            "<person><name>x</name></person>",
        );
    }

    #[test]
    fn value_predicate_flips_true_on_text_arrival() {
        // the inserted <a> matches [val="5"] only once its text lands
        check_insert("<r><a>5</a><t/></r>", "//a{id}[val=\"5\"]", "//t", "<a>5</a>");
    }

    #[test]
    fn value_predicate_flips_false_on_more_text() {
        // appending text to a matched node un-matches it
        check_insert("<r><a>5</a></r>", "//a{id}[val=\"5\"]", "//a", "<x>9</x>");
    }

    #[test]
    fn value_predicate_under_deletion() {
        // removing the text below `a` un-matches [val="5"]
        check_delete("<r><a>5<x><q/></x></a></r>", "//a{id}[val=\"5\"]", "//a/x");
        // removing noise text restores the match
        check_delete("<r><a>5<x>junk</x></a></r>", "//a{id}[val=\"5\"]", "//a/x");
    }

    #[test]
    fn predicate_on_branch_node() {
        check_insert(
            "<r><o><b><i>4.50</i></b></o><o><b><i>1.00</i></b></o></r>",
            "//o{id}[//i[val=\"4.50\"]]//b{id}",
            "//o",
            "<b><i>4.50</i></b>",
        );
    }
}
