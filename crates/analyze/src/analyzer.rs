//! The analysis façade: one [`Analyzer`] per (DTD, view catalog).
//!
//! Build it once, then ask it about statements as they arrive: a
//! [`StatementShape`] costs one path walk (no document access), a
//! skip mask one relevance check per view. The `Database` façade keeps
//! an `Analyzer` behind its `analyze(Strict|Warn)` builder knob; the
//! `analyze_lint` example drives the same API as a CI gate.

use crate::independence;
use crate::relevance::{relevance, RelevanceMatrix, Verdict};
use crate::report::{AnalysisReport, Finding, Severity};
use crate::schema::SchemaInfo;
use crate::shape::StatementShape;
use crate::view::ViewSummary;
use xivm_dtd::Dtd;
use xivm_pattern::TreePattern;
use xivm_update::UpdateStatement;

/// Static analyses over one (DTD, view catalog) pair.
#[derive(Debug, Clone)]
pub struct Analyzer {
    schema: Option<SchemaInfo>,
    views: Vec<ViewSummary>,
}

impl Analyzer {
    /// Summarizes `views` against `dtd` (pass `None` to analyze from
    /// label alphabets alone).
    pub fn new<'a, I>(dtd: Option<&Dtd>, views: I) -> Analyzer
    where
        I: IntoIterator<Item = (&'a str, &'a TreePattern)>,
    {
        let schema = dtd.and_then(SchemaInfo::from_dtd);
        let views = views
            .into_iter()
            .map(|(name, p)| ViewSummary::from_pattern(name, p, schema.as_ref()))
            .collect();
        Analyzer { schema, views }
    }

    /// The schema relations, when a usable DTD was supplied.
    pub fn schema(&self) -> Option<&SchemaInfo> {
        self.schema.as_ref()
    }

    /// The view summaries, in catalog order.
    pub fn views(&self) -> &[ViewSummary] {
        &self.views
    }

    /// Abstracts one statement (one path walk; no document access).
    pub fn statement_shape(&self, stmt: &UpdateStatement) -> StatementShape {
        StatementShape::of(self.schema.as_ref(), stmt)
    }

    /// Per-view verdicts for one statement shape, in catalog order.
    pub fn verdicts(&self, shape: &StatementShape) -> Vec<Verdict> {
        self.views.iter().map(|v| relevance(v, shape)).collect()
    }

    /// Skip mask for one statement shape: `mask[i] == true` means view
    /// `i` is statically irrelevant and the engine may skip its
    /// maintenance entirely.
    pub fn skip_mask(&self, shape: &StatementShape) -> Vec<bool> {
        self.views.iter().map(|v| relevance(v, shape).can_skip()).collect()
    }

    /// Are the statements of a batch provably pairwise independent
    /// (Figure 15 lifted to shapes)? `true` authorizes skipping the
    /// runtime pairwise conflict scan.
    pub fn batch_independent(&self, statements: &[UpdateStatement]) -> bool {
        let shapes: Vec<StatementShape> =
            statements.iter().map(|s| self.statement_shape(s)).collect();
        independence::pairwise_independent(&shapes)
    }

    /// Full report over the catalog and a statement workload: dead
    /// views (errors), dead statements (warnings) and the relevance
    /// matrix.
    pub fn report<'a, I>(&self, statements: I) -> AnalysisReport
    where
        I: IntoIterator<Item = (&'a str, &'a UpdateStatement)>,
    {
        let mut findings = Vec::new();
        for v in &self.views {
            if v.dead {
                findings.push(Finding {
                    severity: Severity::Error,
                    subject: v.name.clone(),
                    message: "view pattern matches no DTD-conforming document; \
                              the view is always empty"
                        .to_owned(),
                });
            }
        }
        let mut shaped = Vec::new();
        for (name, stmt) in statements {
            let shape = self.statement_shape(stmt);
            if shape.dead {
                findings.push(Finding {
                    severity: Severity::Warning,
                    subject: name.to_owned(),
                    message: "statement target selects nothing in any \
                              DTD-conforming document; the statement is a no-op"
                        .to_owned(),
                });
            }
            shaped.push((name.to_owned(), shape));
        }
        AnalysisReport {
            findings,
            matrix: RelevanceMatrix::build(&self.views, &shaped),
            schema_informed: self.schema.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_dtd::grammar::figure_5a;
    use xivm_pattern::parse_pattern;

    fn analyzer() -> Analyzer {
        let dtd = figure_5a();
        let views = [
            ("live", parse_pattern("/d1/a{id}").unwrap()),
            ("dead", parse_pattern("//zzz{id}").unwrap()),
            ("textual", parse_pattern("//b{val}").unwrap()),
        ];
        Analyzer::new(Some(&dtd), views.iter().map(|(n, p)| (*n, p)))
    }

    #[test]
    fn dead_views_become_errors() {
        let a = analyzer();
        let stmt = UpdateStatement::insert("//b", "<c/>").unwrap();
        let report = a.report([("ins", &stmt)]);
        assert!(report.has_errors());
        assert_eq!(report.errors().count(), 1);
        assert!(report.schema_informed);
        assert_eq!(report.matrix.views.len(), 3);
    }

    #[test]
    fn dead_statements_become_warnings() {
        let a = analyzer();
        let stmt = UpdateStatement::insert("/d1/zzz", "<c/>").unwrap();
        let report = a.report([("noop", &stmt)]);
        let warn: Vec<_> =
            report.findings.iter().filter(|f| f.severity == Severity::Warning).collect();
        assert_eq!(warn.len(), 1);
        assert_eq!(warn[0].subject, "noop");
    }

    #[test]
    fn skip_masks_follow_the_matrix() {
        let a = analyzer();
        // An element-only insert below b: irrelevant to "live" (no c
        // in its labels, no text stored), irrelevant to "dead", but
        // text-relevant to "textual" (b's value changes).
        let shape = a.statement_shape(&UpdateStatement::insert("//b", "<c>t</c>").unwrap());
        assert_eq!(a.skip_mask(&shape), vec![true, true, false]);
        assert_eq!(
            a.verdicts(&shape),
            vec![Verdict::Irrelevant, Verdict::Irrelevant, Verdict::Relevant]
        );
    }

    #[test]
    fn batch_independence() {
        let a = analyzer();
        let ins_a = UpdateStatement::insert("/d1/a", "<b/>").unwrap();
        let ins_b = UpdateStatement::insert("//b", "<c/>").unwrap();
        assert!(a.batch_independent(&[ins_a.clone(), ins_b.clone()]));
        let del_a = UpdateStatement::delete("//a").unwrap();
        assert!(!a.batch_independent(&[del_a, ins_b]));
    }
}
