//! Commit reports: what one committed update did to every view, with
//! the per-view Δ as a first-class value.
//!
//! Propagation computes per-view deltas (the Δ⁺/Δ⁻ tables of §3.4,
//! Algorithms 1–6) instead of recomputing views — and the façade hands
//! those deltas to the caller instead of dropping them at the commit
//! boundary. Every successful [`Database::apply`] /
//! [`Transaction::commit`] returns a [`Commit`]: a monotonically
//! increasing sequence number, the optimizer counters, and one
//! [`UpdateReport`] (carrying a [`ViewDelta`]) per view.
//!
//! A [`ViewDelta`] is *complete*: replaying it onto a snapshot of the
//! pre-commit [`ViewStore`] reproduces the post-commit store exactly
//! (keys, derivation counts and stored `val` / `cont` fields) — the
//! property suite checks this for random documents, view sets and
//! transactions at every worker count. Consumers therefore never need
//! to re-read and diff whole stores; they read O(|Δ|) per commit.
//!
//! [`Database::apply`]: crate::database::DbInner::apply
//! [`Transaction::commit`]: crate::database::Transaction::commit

use crate::database::ViewHandle;
use crate::engine::UpdateReport;
use crate::view_store::{TupleKey, ViewStore};
use xivm_algebra::Tuple;
use xivm_pulopt::ReductionTrace;

/// The net effect of one commit on one materialized view.
///
/// The three parts mirror how propagation patches the store: tuples
/// (or additional derivations of existing tuples) inserted, derivation
/// counts removed (dropping the tuple when its count reaches zero),
/// and surviving tuples whose stored `val` / `cont` text changed
/// (PIMT / PDMT). [`Self::replay`] applies them in that order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViewDelta {
    /// Tuples added with their derivation counts (Δ⁺ side: PINT).
    pub inserted: Vec<(Tuple, u64)>,
    /// Derivation counts removed per tuple key (Δ⁻ side: PDDT). A
    /// tuple whose count reaches zero leaves the view.
    pub removed: Vec<(TupleKey, u64)>,
    /// Surviving tuples whose stored text changed (PIMT / PDMT), with
    /// their post-commit contents.
    pub modified: Vec<(TupleKey, Tuple)>,
}

impl ViewDelta {
    /// True when the commit did not touch this view at all.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty() && self.modified.is_empty()
    }

    /// Number of delta entries (insertions + removals + modifications)
    /// — the O(|Δ|) a consumer processes instead of re-reading the
    /// store.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.removed.len() + self.modified.len()
    }

    /// The delta as a stream of weighted changes in the Z-set weight
    /// algebra: an insertion weighs `+count` (the derivations added),
    /// a removal weighs `−count` (the derivations dropped), and a
    /// modification weighs `0` — the tuple's membership is unchanged,
    /// only its stored text moved. Entries come in replay order
    /// (removals, then insertions, then modifications), so a consumer
    /// folding them over a replica sees exactly what [`Self::replay`]
    /// would do, without hand-matching the three-way split.
    pub fn weights(&self) -> impl Iterator<Item = (i64, WeightedChange<'_>)> {
        let removed = self
            .removed
            .iter()
            .map(|(key, count)| (-(*count as i64), WeightedChange::Remove { key, count: *count }));
        let inserted = self
            .inserted
            .iter()
            .map(|(tuple, count)| (*count as i64, WeightedChange::Insert { tuple, count: *count }));
        let modified =
            self.modified.iter().map(|(key, tuple)| (0, WeightedChange::Modify { key, tuple }));
        removed.chain(inserted).chain(modified)
    }

    /// Sorts every section into document order, making the delta a
    /// canonical value: propagation walks hash stores, whose iteration
    /// order differs between otherwise-identical databases, and the
    /// façade promises bit-identical commits for equivalent updates
    /// (sequential vs parallel, textual vs typed). Safe because replay
    /// is order-insensitive within a section: removals for one key
    /// commute (the count is a saturating sum) and same-key
    /// insertions carry identical fields (all read the same
    /// post-update document).
    pub(crate) fn canonicalize(&mut self) {
        self.inserted.sort_by(|a, b| crate::view_store::doc_order(&a.0, &b.0).then(a.1.cmp(&b.1)));
        self.removed.sort_by(|a, b| doc_key_cmp(&a.0, &b.0).then(a.1.cmp(&b.1)));
        self.modified.sort_by(|a, b| doc_key_cmp(&a.0, &b.0));
    }

    /// Applies the delta to a store. Replaying onto a snapshot of the
    /// pre-commit store yields the post-commit store exactly; the
    /// order (removals, then insertions, then modifications) matches
    /// the order propagation patched the original.
    pub fn replay(&self, store: &mut ViewStore) {
        for (key, count) in &self.removed {
            store.remove_derivations(key, *count);
        }
        for (tuple, count) in &self.inserted {
            store.add(tuple.clone(), *count);
        }
        for (key, tuple) in &self.modified {
            if let Some(stored) = store.tuple_mut(key) {
                *stored = tuple.clone();
            }
        }
    }
}

/// One entry of [`ViewDelta::weights`]: a view change with its Z-set
/// weight (insert `+count`, delete `−count`, modify `0`). Borrows from
/// the delta, so iterating a delta allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightedChange<'a> {
    /// `count` derivations of `tuple` entered the view (weight
    /// `+count`).
    Insert { tuple: &'a Tuple, count: u64 },
    /// `count` derivations left the tuple behind `key` (weight
    /// `−count`); the tuple disappears when its derivation count hits
    /// zero.
    Remove { key: &'a TupleKey, count: u64 },
    /// The tuple behind `key` survived with changed stored text
    /// (weight `0`); `tuple` is its post-commit contents.
    Modify { key: &'a TupleKey, tuple: &'a Tuple },
}

impl WeightedChange<'_> {
    /// The Z-set weight of this change (also the first element of the
    /// [`ViewDelta::weights`] pair, duplicated here for call sites
    /// holding only the change).
    pub fn weight(&self) -> i64 {
        match self {
            WeightedChange::Insert { count, .. } => *count as i64,
            WeightedChange::Remove { count, .. } => -(*count as i64),
            WeightedChange::Modify { .. } => 0,
        }
    }

    /// The key of the view tuple this change touches (computed from
    /// the tuple's ID columns for insertions).
    pub fn key(&self) -> TupleKey {
        match self {
            WeightedChange::Insert { tuple, .. } => tuple.id_key(),
            WeightedChange::Remove { key, .. } => (*key).clone(),
            WeightedChange::Modify { key, .. } => (*key).clone(),
        }
    }

    /// The tuple contents carried by this change — the inserted tuple
    /// or a modification's post-commit contents; removals carry only a
    /// key.
    pub fn tuple(&self) -> Option<&Tuple> {
        match self {
            WeightedChange::Insert { tuple, .. } => Some(tuple),
            WeightedChange::Remove { .. } => None,
            WeightedChange::Modify { tuple, .. } => Some(tuple),
        }
    }
}

/// Document-order comparison of two tuple keys (lexicographic over
/// their ID columns, shorter key first on a shared prefix).
fn doc_key_cmp(a: &TupleKey, b: &TupleKey) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.doc_cmp(y);
        if c.is_ne() {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

/// What one committed update (a single statement or a whole
/// transaction) did: sequence number, optimizer counters, and the
/// per-view reports with their deltas.
#[derive(Debug, Clone, Default)]
pub struct Commit {
    /// Monotonically increasing commit sequence number, 1-based per
    /// database. Subscriptions tag their events with it, so a consumer
    /// can check it saw every commit (gapless sequence).
    pub seq: u64,
    /// Statements in the committed batch (1 for `apply`).
    pub statements: usize,
    /// Atomic operations the statements expanded to before
    /// optimization.
    pub naive_ops: usize,
    /// Atomic operations actually propagated after reduction /
    /// aggregation (equal to `naive_ops` for `apply`, which skips the
    /// optimizer).
    pub optimized_ops: usize,
    /// Which reduction rules fired on the combined PUL.
    pub reduction: ReductionTrace,
    per_view: Vec<(String, UpdateReport)>,
}

impl Commit {
    pub(crate) fn new(
        seq: u64,
        statements: usize,
        naive_ops: usize,
        optimized_ops: usize,
        reduction: ReductionTrace,
        per_view: Vec<(String, UpdateReport)>,
    ) -> Self {
        Commit { seq, statements, naive_ops, optimized_ops, reduction, per_view }
    }

    /// Number of views this commit reported on — every view of the
    /// database, in declaration order (empty transactions included:
    /// they report default, delta-free entries for every view).
    pub fn len(&self) -> usize {
        self.per_view.len()
    }

    /// True when the commit reported on no view (a database with no
    /// views). For "did this commit change anything", use
    /// [`Self::touched`] — `commit.touched().is_empty()`.
    pub fn is_empty(&self) -> bool {
        self.per_view.is_empty()
    }

    /// Per-view reports in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &UpdateReport)> {
        self.per_view.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// The report of one view. Handles are only meaningful on the
    /// database that issued this commit: a handle from a database with
    /// more views panics (out of range); a same-shape foreign handle
    /// cannot be detected and simply indexes by declaration order.
    pub fn report(&self, view: ViewHandle) -> &UpdateReport {
        &self.per_view[view.index()].1
    }

    /// The delta of one view (same addressing rules as
    /// [`Self::report`]).
    pub fn delta(&self, view: ViewHandle) -> &ViewDelta {
        &self.report(view).delta
    }

    /// The report of a view looked up by name.
    pub fn report_by_name(&self, name: &str) -> Option<&UpdateReport> {
        self.per_view.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Names of the views whose delta is non-empty, in declaration
    /// order.
    pub fn touched(&self) -> Vec<&str> {
        self.per_view.iter().filter(|(_, r)| !r.delta.is_empty()).map(|(n, _)| n.as_str()).collect()
    }

    /// Number of views the static analyzer let this commit skip
    /// entirely (their reports carry
    /// [`UpdateReport::statically_skipped`]): no footprint work, no Δ
    /// extraction, no delta harvest. 0 on databases built without
    /// `analyze(..)`.
    pub fn static_skips(&self) -> usize {
        self.per_view.iter().filter(|(_, r)| r.statically_skipped).count()
    }

    /// The per-view pruning statistics summed over every view —
    /// `(insert side, delete side)`. Benches and tests use this to
    /// assert the Section 3/4 prunings actually fired on a workload
    /// without walking per-view reports.
    pub fn prune_totals(&self) -> (crate::prune::PruneStats, crate::prune::PruneStats) {
        let mut ins = crate::prune::PruneStats::default();
        let mut del = crate::prune::PruneStats::default();
        for (_, r) in &self.per_view {
            ins.absorb(&r.insert_prune);
            del.absorb(&r.delete_prune);
        }
        (ins, del)
    }

    /// True when two commits describe the same observable outcome:
    /// equal sequencing, statement and optimizer counters, reduction
    /// trace, and per-view reports (names in order, tuple /
    /// derivation counters, bit-identical deltas). Timings are
    /// ignored — they legitimately differ between runs. This is the
    /// commit-level comparison of the differential soak harness:
    /// sequential, pooled and pipelined executions of the same
    /// statement stream must produce pairwise `same_outcome` commits.
    pub fn same_outcome(&self, other: &Commit) -> bool {
        self.seq == other.seq
            && self.statements == other.statements
            && self.naive_ops == other.naive_ops
            && self.optimized_ops == other.optimized_ops
            && self.reduction == other.reduction
            && self.per_view.len() == other.per_view.len()
            && self
                .per_view
                .iter()
                .zip(&other.per_view)
                .all(|((n1, r1), (n2, r2))| n1 == n2 && r1.same_outcome(r2))
    }

    pub(crate) fn per_view(&self) -> &[(String, UpdateReport)] {
        &self.per_view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_algebra::Field;
    use xivm_pattern::parse_pattern;
    use xivm_xml::dewey::Step;
    use xivm_xml::{DeweyId, LabelId};

    fn tup(ord: u64) -> Tuple {
        Tuple::new(vec![Field::id_only(DeweyId::from_steps(vec![Step::new(LabelId(0), ord)]))])
    }

    #[test]
    fn replay_applies_removals_insertions_and_modifications() {
        let pattern = parse_pattern("//a{id}").unwrap();
        let mut store = ViewStore::new(&pattern);
        store.add(tup(1), 2);
        store.add(tup(2), 1);

        let mut patched = tup(2);
        patched.field_mut(0).val = Some("new".into());
        let delta = ViewDelta {
            inserted: vec![(tup(3), 1), (tup(1), 1)],
            removed: vec![(tup(1).id_key(), 2)],
            modified: vec![(tup(2).id_key(), patched.clone())],
        };
        assert_eq!(delta.len(), 4);
        assert!(!delta.is_empty());
        delta.replay(&mut store);

        assert_eq!(store.count_of(&tup(1).id_key()), Some(1), "2 removed, then 1 re-added");
        assert_eq!(store.count_of(&tup(3).id_key()), Some(1));
        assert_eq!(store.tuple(&tup(2).id_key()), Some(&patched));
    }

    #[test]
    fn weights_follow_the_snippet_algebra_in_replay_order() {
        let mut patched = tup(2);
        patched.field_mut(0).val = Some("new".into());
        let delta = ViewDelta {
            inserted: vec![(tup(3), 1), (tup(1), 2)],
            removed: vec![(tup(4).id_key(), 3)],
            modified: vec![(tup(2).id_key(), patched.clone())],
        };

        let entries: Vec<(i64, WeightedChange<'_>)> = delta.weights().collect();
        assert_eq!(entries.len(), delta.len());
        assert_eq!(
            entries.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
            vec![-3, 1, 2, 0],
            "removals first, then insertions, then modifications"
        );
        for (w, change) in &entries {
            assert_eq!(*w, change.weight(), "pair weight matches the change's own");
        }

        assert_eq!(entries[0].1.key(), tup(4).id_key());
        assert_eq!(entries[0].1.tuple(), None, "removals carry only a key");
        assert_eq!(entries[1].1.tuple(), Some(&tup(3)));
        assert_eq!(entries[2].1.key(), tup(1).id_key());
        assert_eq!(entries[3].1.tuple(), Some(&patched));
        assert_eq!(entries[3].1.key(), tup(2).id_key());

        // The weights sum to the store's net derivation change.
        assert_eq!(entries.iter().map(|(w, _)| *w).sum::<i64>(), 0);
        assert!(ViewDelta::default().weights().next().is_none());
    }

    #[test]
    fn empty_delta_replays_to_identity() {
        let pattern = parse_pattern("//a{id}").unwrap();
        let mut store = ViewStore::new(&pattern);
        store.add(tup(1), 1);
        let snapshot = store.clone();
        ViewDelta::default().replay(&mut store);
        assert!(store.identical_to(&snapshot));
    }
}
