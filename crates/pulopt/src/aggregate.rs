//! Aggregation rules A1, A2 and D6 (Figure 16), for PULs to be run
//! sequentially (`Δ1 ; Δ2`).
//!
//! * **A1** — matching `ins↘(v, L1) ∈ Δ1` and `ins↘(v, L2) ∈ Δ2`:
//!   combine into `ins↘(v, [L1, L2])` inside Δ1;
//! * **A2** — A1 in reverse: combine into Δ2;
//! * **D6** — an operation of Δ2 references a node *inside a tree that
//!   Δ1 is about to insert*: splice Δ2's forest into Δ1's parameter
//!   tree and drop the Δ2 operation.
//!
//! D6 resolution: a Δ2 target strictly below a Δ1 insertion target and
//! absent from the current document can only refer to a node of a
//! pending forest. The remaining Dewey steps are resolved against Δ1's
//! forest by *exact ordinal*: forests receive deterministic
//! stride-multiple ordinals when parsed (offset, at the first level,
//! by the ordinals the insertion target has already handed out), so an
//! in-forest target is identified unambiguously and a target that
//! lives elsewhere — under a real intermediate node, or in another
//! operation's pending forest — finds no match. When the walk fails
//! the rule simply does not fire and the Δ2 operation is kept verbatim
//! (its structural ID still resolves once Δ1 has been applied), so
//! aggregation never guesses. This covers the paper's Example 5.3 and
//! implements the ID-projection of Cavalieri et al. for appended
//! forests.

use xivm_update::{AtomicOp, Pul};
use xivm_xml::{parse_document, serialize_node, DeweyId, Document};

/// What the aggregation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregationOutcome {
    pub a1_fired: usize,
    pub d6_fired: usize,
    pub ops_before: usize,
    pub ops_after: usize,
}

/// Aggregates `Δ1 ; Δ2` into a single PUL equivalent to running them
/// in sequence. `doc` is the document *before* Δ1, used to decide
/// whether a Δ2 target already exists (D6 applies only to
/// forest-internal targets).
pub fn aggregate(doc: &Document, first: &Pul, second: &Pul) -> (Pul, AggregationOutcome) {
    let mut outcome =
        AggregationOutcome { ops_before: first.len() + second.len(), ..Default::default() };
    let mut merged: Vec<AtomicOp> = first.ops.clone();
    'second: for op2 in &second.ops {
        match op2 {
            AtomicOp::InsertInto { target: t2, forest: f2 } => {
                // A1 / A2: same-target insertion merges into Δ1's op.
                for op1 in merged.iter_mut() {
                    if let AtomicOp::InsertInto { target: t1, forest: f1 } = op1 {
                        if t1 == t2 {
                            f1.push_str(f2);
                            outcome.a1_fired += 1;
                            continue 'second;
                        }
                    }
                }
                // D6: the target lives inside a pending forest of Δ1.
                if doc.find_node(t2).is_none() {
                    for op1 in merged.iter_mut() {
                        let AtomicOp::InsertInto { target: t1, forest: f1 } = op1 else {
                            continue;
                        };
                        if t1.is_ancestor_of(t2) && chain_is_pending(doc, t1, t2) {
                            if let Some(spliced) = splice_into_forest(doc, f1, t1, t2, f2) {
                                *f1 = spliced;
                                outcome.d6_fired += 1;
                                continue 'second;
                            }
                        }
                    }
                }
                merged.push(op2.clone());
            }
            AtomicOp::Delete { .. } => merged.push(op2.clone()),
        }
    }
    outcome.ops_after = merged.len();
    (Pul::new(merged), outcome)
}

/// True when every node strictly between `t1` and `t2` is absent from
/// the current document. A live intermediate node means `t2` hangs off
/// a *real* descendant of `t1`, not off the pending forest `t1` is
/// about to receive — D6 must not fire there even though `t1` is an
/// ancestor of `t2`.
fn chain_is_pending(doc: &Document, t1: &DeweyId, t2: &DeweyId) -> bool {
    let mut cur = t2.parent();
    while let Some(p) = cur {
        if p.depth() <= t1.depth() {
            break;
        }
        if doc.find_node(&p).is_some() {
            return false;
        }
        cur = p.parent();
    }
    true
}

/// Splices `addition` under the forest node the Dewey steps `t1 → t2`
/// address, returning the re-serialized forest, or `None` when `t2`
/// does not denote a node of this forest.
///
/// Appended forests receive deterministic ordinals: the j-th node
/// parsed under a fresh parent carries ordinal `j · ORD_STRIDE`, and
/// the forest roots themselves continue from `t1`'s highest
/// already-allocated child ordinal. Re-parsing the forest under a
/// scratch root therefore reproduces exactly the ordinals `apply-pul`
/// will assign (modulo that first-level offset), and each step of
/// `t2` can be resolved by ordinal equality — unambiguously, unlike a
/// label-path walk.
fn splice_into_forest(
    doc: &Document,
    forest: &str,
    t1: &DeweyId,
    t2: &DeweyId,
    addition: &str,
) -> Option<String> {
    // The first-level offset is only known for targets that exist in
    // the pre-Δ1 document.
    let offset = doc.max_child_ord(doc.find_node(t1)?);
    // Parse the forest under a scratch root.
    let mut scratch = parse_document(&format!("<scratch-root>{forest}</scratch-root>")).ok()?;
    let root = scratch.root()?;
    let rel_steps = &t2.steps()[t1.depth()..];
    let mut cur = root;
    for (depth, step) in rel_steps.iter().enumerate() {
        // The ordinal this node carries inside the scratch parse; a
        // step that resolves to no forest node (a real sibling, or a
        // node of some other operation's pending forest) refuses the
        // splice.
        let want = if depth == 0 { step.ord.checked_sub(offset)? } else { step.ord };
        let next =
            scratch.children_of(cur).iter().copied().find(|&c| scratch.node(c).ord == want)?;
        if !scratch.node(next).is_element() {
            return None;
        }
        cur = next;
    }
    xivm_xml::parser::parse_forest_into(&mut scratch, cur, addition).ok()?;
    // Serialize children of the scratch root back into a forest.
    let out: String =
        scratch.children_of(root).iter().map(|&c| serialize_node(&scratch, c)).collect();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_update::{apply_pul, compute_pul};
    use xivm_xml::serialize_document;

    fn pul(doc: &Document, stmt: &str) -> Pul {
        let s = xivm_update::statement::parse_statement(stmt).unwrap();
        compute_pul(doc, &s)
    }

    const DOC: &str = "<r><x/><y/></r>";

    /// A1: same-target insertions merge across the two PULs.
    #[test]
    fn a1_merges_same_target() {
        let d = parse_document(DOC).unwrap();
        let p1 = pul(&d, "insert <c><b/></c> into //x");
        let p2 = pul(&d, "insert <b/> into //x");
        let (agg, out) = aggregate(&d, &p1, &p2);
        assert_eq!(out.a1_fired, 1);
        assert_eq!(agg.len(), 1);
        match &agg.ops[0] {
            AtomicOp::InsertInto { forest, .. } => assert_eq!(forest, "<c><b/></c><b/>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// D6 (Example 5.3's third case): Δ2 inserts under a node that only
    /// exists inside Δ1's pending forest.
    #[test]
    fn d6_splices_into_pending_forest() {
        let mut d = parse_document(DOC).unwrap();
        let p1 = pul(&d, "insert <d><b/></d> into //x");
        // Fabricate a Δ2 op addressing the pending d under x: its ID
        // extends the x target by a d step.
        let x_target = p1.ops[0].target().clone();
        let d_label = d.intern_label("d");
        let inner = x_target.child(d_label, xivm_xml::dewey::ORD_STRIDE);
        let p2 = Pul::new(vec![AtomicOp::InsertInto { target: inner, forest: "<b/>".to_owned() }]);
        let (agg, out) = aggregate(&d, &p1, &p2);
        assert_eq!(out.d6_fired, 1);
        assert_eq!(agg.len(), 1);
        match &agg.ops[0] {
            AtomicOp::InsertInto { forest, .. } => assert_eq!(forest, "<d><b/><b/></d>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Aggregation must equal sequential application.
    #[test]
    fn aggregation_preserves_semantics() {
        let d0 = parse_document(DOC).unwrap();
        let p1 = pul(&d0, "insert <a/> into //x");
        let p2 = pul(&d0, "insert <b/> into //x");

        let mut seq = parse_document(DOC).unwrap();
        apply_pul(&mut seq, &p1).unwrap();
        apply_pul(&mut seq, &p2).unwrap();

        let (agg, _) = aggregate(&d0, &p1, &p2);
        let mut once = parse_document(DOC).unwrap();
        apply_pul(&mut once, &agg).unwrap();

        assert_eq!(serialize_document(&seq), serialize_document(&once));
    }

    #[test]
    fn unrelated_ops_concatenate() {
        let d = parse_document(DOC).unwrap();
        let p1 = pul(&d, "insert <a/> into //x");
        let p2 = pul(&d, "delete //y");
        let (agg, out) = aggregate(&d, &p1, &p2);
        assert_eq!(agg.len(), 2);
        assert_eq!(out.a1_fired + out.d6_fired, 0);
    }
}
