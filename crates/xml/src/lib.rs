//! XML storage substrate for algebraic incremental view maintenance.
//!
//! This crate provides the document substrate the paper's algorithms run
//! on: ordered labeled trees with element / attribute / text nodes
//! ([`Document`]), update-stable structural identifiers in the style of
//! Compact Dynamic Dewey IDs ([`DeweyId`]), per-label canonical
//! relations kept in document order ([`CanonicalIndex`]), and a small
//! XML parser / serializer pair.
//!
//! Documents are copy-on-write: nodes live in a chunked [`Arena`] and
//! canonical relations behind per-label `Arc`s, so `Document::clone`
//! is a cheap frozen snapshot and mutations copy only the chunks and
//! lists they touch — the substrate for MVCC snapshots and deep
//! commit pipelining in the layers above.

pub mod arena;
pub mod canonical;
pub mod dewey;
pub mod document;
pub mod error;
pub mod forest;
pub mod label;
pub mod node;
pub mod parser;
pub mod serializer;

pub use arena::Arena;
pub use canonical::CanonicalIndex;
pub use dewey::{DeweyId, Step};
pub use document::Document;
pub use error::XmlError;
pub use forest::DeweyForest;
pub use label::{LabelId, LabelInterner, TEXT_LABEL};
pub use node::{Node, NodeId, NodeKind};
pub use parser::parse_document;
pub use serializer::{serialize_document, serialize_node};
