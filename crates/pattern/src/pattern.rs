//! The tree pattern dialect **P** (Section 2.2).

use xivm_algebra::Axis;

/// Index of a node within its [`TreePattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternNodeId(pub usize);

impl PatternNodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a pattern node matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// An element (or, with a leading `@`, an attribute) label.
    Name(String),
    /// `*` — any element.
    Wildcard,
}

impl NodeTest {
    pub fn name(&self) -> Option<&str> {
        match self {
            NodeTest::Name(n) => Some(n),
            NodeTest::Wildcard => None,
        }
    }
}

/// The stored-attribute annotations of a pattern node: which items the
/// view materializes for each matching XML node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Annotations {
    pub id: bool,
    pub val: bool,
    pub cont: bool,
}

impl Annotations {
    pub const NONE: Annotations = Annotations { id: false, val: false, cont: false };
    pub const ID: Annotations = Annotations { id: true, val: false, cont: false };

    pub fn any(self) -> bool {
        self.id || self.val || self.cont
    }

    /// val or cont — the node belongs to the paper's `cvn` set
    /// (content-or-value nodes, Algorithm 4).
    pub fn stores_text(self) -> bool {
        self.val || self.cont
    }

    pub fn union(self, other: Annotations) -> Annotations {
        Annotations {
            id: self.id || other.id,
            val: self.val || other.val,
            cont: self.cont || other.cont,
        }
    }
}

/// One node of a tree pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    pub test: NodeTest,
    /// Edge from the parent: `/` ([`Axis::Child`]) or `//`
    /// ([`Axis::Descendant`]). Meaningless for the root.
    pub edge: Axis,
    pub ann: Annotations,
    /// Optional `[val = c]` value predicate.
    pub val_pred: Option<String>,
    pub parent: Option<PatternNodeId>,
    pub children: Vec<PatternNodeId>,
    /// Unique column name ("label", or "label#k" on repeated labels).
    pub name: String,
}

/// A rooted tree pattern. Node 0 is the root; nodes are stored in
/// insertion (pre-order if built top-down) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePattern {
    nodes: Vec<PatternNode>,
}

impl TreePattern {
    /// Creates a pattern with only a root node.
    pub fn new(root_test: NodeTest) -> Self {
        let name = Self::fresh_name(&[], &root_test);
        TreePattern {
            nodes: vec![PatternNode {
                test: root_test,
                edge: Axis::Descendant,
                ann: Annotations::NONE,
                val_pred: None,
                parent: None,
                children: Vec::new(),
                name,
            }],
        }
    }

    pub fn root(&self) -> PatternNodeId {
        PatternNodeId(0)
    }

    /// Adds a child under `parent` via the given edge.
    pub fn add_child(
        &mut self,
        parent: PatternNodeId,
        edge: Axis,
        test: NodeTest,
    ) -> PatternNodeId {
        let name = Self::fresh_name(&self.nodes, &test);
        let id = PatternNodeId(self.nodes.len());
        self.nodes.push(PatternNode {
            test,
            edge,
            ann: Annotations::NONE,
            val_pred: None,
            parent: Some(parent),
            children: Vec::new(),
            name,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    fn fresh_name(existing: &[PatternNode], test: &NodeTest) -> String {
        let base = match test {
            NodeTest::Name(n) => n.clone(),
            NodeTest::Wildcard => "*".to_owned(),
        };
        let dups = existing.iter().filter(|n| n.base_label() == base).count();
        if dups == 0 {
            base
        } else {
            format!("{base}#{dups}")
        }
    }

    /// Sets the root's incoming edge: [`Axis::Child`] anchors the
    /// pattern at the document root (`/site…`); [`Axis::Descendant`]
    /// (the default) lets the root match anywhere (`//a…`).
    pub fn set_root_edge(&mut self, axis: Axis) {
        self.nodes[0].edge = axis;
    }

    pub fn annotate(&mut self, node: PatternNodeId, ann: Annotations) {
        self.nodes[node.index()].ann = self.nodes[node.index()].ann.union(ann);
    }

    pub fn set_val_pred(&mut self, node: PatternNodeId, value: impl Into<String>) {
        self.nodes[node.index()].val_pred = Some(value.into());
    }

    pub fn node(&self, id: PatternNodeId) -> &PatternNode {
        &self.nodes[id.index()]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        false // a pattern always has a root
    }

    pub fn node_ids(&self) -> impl Iterator<Item = PatternNodeId> {
        (0..self.nodes.len()).map(PatternNodeId)
    }

    /// Nodes annotated with `val` or `cont` — the `cvn` set of
    /// Algorithm 4 (PIMT) / Algorithm 6 (PDDT/MT).
    pub fn cvn(&self) -> Vec<PatternNodeId> {
        self.node_ids().filter(|&n| self.node(n).ann.stores_text()).collect()
    }

    /// Nodes with at least one stored attribute, in pattern order —
    /// the columns of the materialized view.
    pub fn stored_nodes(&self) -> Vec<PatternNodeId> {
        self.node_ids().filter(|&n| self.node(n).ann.any()).collect()
    }

    /// True iff `anc` is a proper ancestor of `desc` in the pattern.
    pub fn is_ancestor(&self, anc: PatternNodeId, desc: PatternNodeId) -> bool {
        let mut cur = self.node(desc).parent;
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.node(p).parent;
        }
        false
    }

    /// Pre-order node ids (root first, children in declaration order).
    pub fn preorder(&self) -> Vec<PatternNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Renders the pattern in the compact textual syntax accepted by
    /// [`crate::parse_pattern()`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write_node(self.root(), &mut out);
        out
    }

    fn write_node(&self, id: PatternNodeId, out: &mut String) {
        let n = self.node(id);
        out.push_str(match n.edge {
            Axis::Child => "/",
            Axis::Descendant => "//",
        });
        out.push_str(match &n.test {
            NodeTest::Name(l) => l,
            NodeTest::Wildcard => "*",
        });
        if n.ann.any() {
            let mut parts = Vec::new();
            if n.ann.id {
                parts.push("id");
            }
            if n.ann.val {
                parts.push("val");
            }
            if n.ann.cont {
                parts.push("cont");
            }
            out.push('{');
            out.push_str(&parts.join(","));
            out.push('}');
        }
        if let Some(v) = &n.val_pred {
            out.push_str("[val=\"");
            out.push_str(v);
            out.push_str("\"]");
        }
        let kids = &n.children;
        if kids.is_empty() {
            return;
        }
        // all but the last child render as branches; the last continues
        // the main path, matching the usual XPath-like reading
        for &c in &kids[..kids.len() - 1] {
            out.push('[');
            self.write_node(c, out);
            out.push(']');
        }
        self.write_node(kids[kids.len() - 1], out);
    }
}

impl PatternNode {
    /// Label without disambiguation suffix.
    pub fn base_label(&self) -> String {
        match &self.test {
            NodeTest::Name(n) => n.clone(),
            NodeTest::Wildcard => "*".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> TreePattern {
        // //a[//b//c]//d  (the view of Figure 6)
        let mut p = TreePattern::new(NodeTest::Name("a".into()));
        let b = p.add_child(p.root(), Axis::Descendant, NodeTest::Name("b".into()));
        let _c = p.add_child(b, Axis::Descendant, NodeTest::Name("c".into()));
        let d = p.add_child(p.root(), Axis::Descendant, NodeTest::Name("d".into()));
        p.annotate(d, Annotations::ID);
        p
    }

    #[test]
    fn construction_and_structure() {
        let p = abcd();
        assert_eq!(p.len(), 4);
        let root = p.root();
        assert_eq!(p.node(root).children.len(), 2);
        let b = p.node(root).children[0];
        let c = p.node(b).children[0];
        assert!(p.is_ancestor(root, c));
        assert!(p.is_ancestor(b, c));
        assert!(!p.is_ancestor(c, b));
    }

    #[test]
    fn preorder_visits_root_first() {
        let p = abcd();
        let order = p.preorder();
        assert_eq!(order[0], p.root());
        assert_eq!(order.len(), 4);
        // a, b, c, d
        let names: Vec<_> = order.iter().map(|&n| p.node(n).name.clone()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn duplicate_labels_get_unique_names() {
        let mut p = TreePattern::new(NodeTest::Name("b".into()));
        let b2 = p.add_child(p.root(), Axis::Descendant, NodeTest::Name("b".into()));
        assert_eq!(p.node(p.root()).name, "b");
        assert_eq!(p.node(b2).name, "b#1");
    }

    #[test]
    fn cvn_and_stored_nodes() {
        let mut p = abcd();
        let d = PatternNodeId(3);
        p.annotate(d, Annotations { id: false, val: true, cont: false });
        assert_eq!(p.cvn(), vec![d]);
        assert_eq!(p.stored_nodes(), vec![d]);
    }

    #[test]
    fn to_text_roundtrips_structure() {
        let p = abcd();
        assert_eq!(p.to_text(), "//a[//b//c]//d{id}");
    }

    #[test]
    fn annotations_union() {
        let a = Annotations::ID;
        let b = Annotations { id: false, val: true, cont: true };
        let u = a.union(b);
        assert!(u.id && u.val && u.cont);
        assert!(u.stores_text());
        assert!(!Annotations::NONE.any());
    }
}
