//! The XQuery Update subset of Section 2.3 and its runtime.
//!
//! * [`statement`] — statement-level updates: `delete q`,
//!   `insert xml into q`, `for $x in q insert xml into $x`,
//!   `insert q1 into q2`, and `replace q with xml`;
//! * [`builder`] — typed statement construction: the same forms from
//!   XPath values and [`builder::Element`] content trees instead of
//!   strings;
//! * [`pul`] — pending update lists (`compute-pul`, Section 3.4):
//!   atomic `ins↘` / `del` operations over structural IDs;
//! * [`apply`] — applying a PUL to the document (`apply-insert`),
//!   assigning Dewey IDs to the copied trees as a side effect;
//! * [`delta`] — the Δ⁺ / Δ⁻ tables (Algorithm 2, CD+ and its deletion
//!   counterpart CD−).
//!
//! A statement flows `statement` → [`compute_pul`] → (optionally the
//! Section 5 optimizer in `xivm_pulopt`) → [`apply_pul`], with the
//! [`delta`] tables extracted on both sides of the mutation — the
//! apply → optimize → propagate pipeline drawn in `ARCHITECTURE.md`
//! at the repository root.

pub mod apply;
pub mod builder;
pub mod delta;
pub mod pul;
pub mod statement;

pub use apply::{apply_pul, ApplyResult, DeletedNode};
pub use builder::{element, UpdateBuilder};
pub use delta::{DeltaMinus, DeltaPlus};
pub use pul::{compute_pul, AtomicOp, Pul};
pub use statement::UpdateStatement;
