//! Changefeed over a socket: a remote consumer mirrors a view by
//! replaying its delta stream, byte for byte.
//!
//! A [`Database`] computes per-view deltas on every commit (that is
//! the paper's whole point). In-process, `subscribe` turns one view
//! into a feed of [`DeltaEvent`]s; across processes, a [`FeedServer`]
//! frames the same events onto TCP and a [`ReplicaClient`] maintains
//! a byte-identical copy of the store — `O(|Δ|)` per commit, never a
//! store clone, resumable after a crash from the replica's own
//! high-water mark. Deferred views ride the same stream: their
//! refresh commit carries one coalesced delta whose `folded` range
//! names the commits it batched.
//!
//! ```sh
//! cargo run --release --example changefeed
//! ```

use xivm::prelude::*;
use xivm::update::builder::{delete, element, insert, replace};

fn order(sku: &str) -> UpdateBuilder {
    insert(element("order").child(element("sku").text(sku))).into("//orders")
}

fn main() -> Result<(), Error> {
    // An order book: one document, one view a downstream consumer
    // (index, cache, dashboard) mirrors — from another process.
    let mut db = Database::builder()
        .document(
            "<shop>\
               <orders>\
                 <order><sku>tea</sku></order>\
               </orders>\
               <audit/>\
             </shop>",
        )
        .view("skus", "//order{id}/sku{id,val}")
        .build()?;
    let skus = db.view("skus")?;

    // Serve the view's changefeed on a localhost socket (retain the
    // last 64 events for resume-by-replay), and keep a local feed so
    // this process can narrate the deltas it ships. The local feed is
    // explicitly unbounded: this single thread produces and consumes,
    // so a bounded `Block` queue would deadlock against itself.
    let mut server = FeedServer::bind("127.0.0.1:0", &mut db, skus, 64).expect("bind feed server");
    let feed = db.subscribe_with(skus, None, SlowConsumerPolicy::Block);
    println!("serving view `skus` on {}", server.local_addr());

    // The consumer — normally in another process: its handshake pulls
    // a snapshot of the current store, then only deltas flow.
    let mut replica = ReplicaClient::connect(server.local_addr(), "skus").expect("connect replica");

    // Business as usual, with typed statements: orders arrive, the
    // tea order is swapped for mate, spam is purged, and unrelated
    // subtrees churn without touching the view.
    db.apply(order("coffee"))?;
    db.apply(insert(element("entry").text("day 1")).into("//audit"))?; // does not touch the view
    db.transaction().statement(order("spam")).statement(order("cocoa")).commit()?;
    db.apply(
        replace(r#"//order[sku = "tea"]"#)
            .with(element("order").child(element("sku").text("mate"))),
    )?;
    db.apply(delete(r#"//order[sku = "spam"]"#))?;

    // Ship everything committed so far and let the replica catch up.
    server.pump(&db);
    replica.sync_to(db.last_seq()).expect("replica syncs");
    assert!(replica.identical_to(db.store(skus)), "replica must be byte-identical");

    println!("\nshipped {} commits; per-event weights:", db.last_seq());
    for event in db.drain(&feed) {
        let net: i64 = event.delta.weights().map(|(weight, _)| weight).sum();
        println!(
            "  commit #{}: net weight {:+}{}",
            event.seq,
            net,
            if event.delta.is_empty() { "  (did not touch the view)" } else { "" },
        );
    }

    // Crash mid-stream: the socket dies, commits keep flowing, and
    // the resumed connection replays exactly the missed range from
    // the server's retained window (or falls back to a snapshot if
    // the window were outrun).
    replica.kill();
    db.apply(order("juice"))?;
    db.apply(delete("//audit/entry"))?;
    server.pump(&db);
    replica.reconnect().expect("reconnect after crash");
    replica.sync_to(db.last_seq()).expect("resume syncs");
    assert!(replica.identical_to(db.store(skus)), "resume must converge");
    println!(
        "\ncrashed and resumed: replica back in sync at seq {} after {} reconnect(s)",
        replica.seq(),
        replica.reconnects()
    );

    // Deferred maintenance: take the view off the commit path. The
    // next commits seal without touching the store (their events
    // carry empty deltas), then one refresh folds the whole batch
    // into a single commit — and a single replicated event.
    db.set_maintenance(skus, MaintenanceMode::Deferred)?;
    db.apply(order("matcha"))?;
    db.apply(order("sencha"))?;
    assert_eq!(db.deferred_commits(skus), 2);
    let refresh = db.refresh(skus)?.expect("a batch was pending");
    server.pump(&db);
    replica.sync_to(db.last_seq()).expect("replica folds the refresh");
    assert!(replica.identical_to(db.store(skus)), "folded refresh must converge");

    let events = db.drain(&feed);
    let folded = events.last().and_then(|e| e.folded.clone()).expect("refresh event folds");
    println!(
        "\ndeferred: commits {}..={} left the store untouched; refresh commit #{} folded {:?}",
        folded.start(),
        folded.end(),
        refresh.seq,
        folded
    );

    // The mirrored order book, read back from the replica's store.
    println!(
        "\nreplica order book ({} tuples, seq {}):",
        replica.store().unwrap().len(),
        replica.seq()
    );
    for (tuple, count) in replica.store().unwrap().sorted_tuples() {
        let sku = tuple.field(1).val.as_deref().unwrap_or("?");
        println!("  sku {sku:<8} x{count}");
    }
    assert_eq!(db.store(skus).len(), 6);

    db.unsubscribe(feed);
    server.close(&mut db);
    Ok(())
}
