//! Conflict rules IO, LO and NLO (Figure 15), for PULs to be run in
//! parallel.
//!
//! * **IO** (Insertion Order, symmetric) — two `ins↘` on the same
//!   target: the result depends on execution order;
//! * **LO** (Local Override) — a `del` in one PUL and an `ins↘` on the
//!   same target in the other: the deletion erases the insertion's
//!   effect;
//! * **NLO** (Non-Local Override) — a `del` whose target is an
//!   ancestor of the other PUL's `ins↘` target.

use xivm_update::{AtomicOp, Pul};

/// The kind of conflict detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    InsertionOrder,
    LocalOverride,
    NonLocalOverride,
}

/// A conflict between operation `left_idx` of the first PUL and
/// `right_idx` of the second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    pub kind: ConflictKind,
    pub left_idx: usize,
    pub right_idx: usize,
    /// For the override kinds: true when the *left* operation is the
    /// overridden one. IO is symmetric and ignores this flag.
    pub left_overridden: bool,
}

/// How [`integrate`] resolves conflicts — the "conflict resolution
/// policies" PUL producers specify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Refuse to integrate when any conflict exists (the algorithm
    /// "fails if it cannot identify a valid reconciliation").
    Fail,
    /// Keep the first PUL's operation, drop the conflicting one.
    FirstWins,
    /// Keep the second PUL's operation.
    SecondWins,
}

/// The Figure 15 relation on a *single pair* of atomic operations:
/// `Some((kind, left_overridden))` when running them in the two
/// possible orders can produce different documents, `None` when the
/// pair commutes.
///
/// * two `ins↘` on the same target → IO (symmetric, the flag is
///   always `false`);
/// * a `del` and an `ins↘` on the same target → LO, the deletion is
///   the overridden operation (the paper marks op1 = `del` as
///   overridden by op2);
/// * a `del` whose target is a proper ancestor of the other's `ins↘`
///   target → NLO.
///
/// [`find_conflicts`] applies this pairwise over two whole PULs;
/// [`crate::partition`] applies it over op *projections* of one PUL.
pub fn op_conflict(a: &AtomicOp, b: &AtomicOp) -> Option<(ConflictKind, bool)> {
    match (a, b) {
        (AtomicOp::InsertInto { target: ta, .. }, AtomicOp::InsertInto { target: tb, .. })
            if ta == tb =>
        {
            Some((ConflictKind::InsertionOrder, false))
        }
        (AtomicOp::Delete { node }, AtomicOp::InsertInto { target, .. }) => {
            if node == target {
                // the deletion (left) is overridden: its effect hides
                // the insertion — order-dependent.
                Some((ConflictKind::LocalOverride, true))
            } else if node.is_ancestor_of(target) {
                Some((ConflictKind::NonLocalOverride, true))
            } else {
                None
            }
        }
        (AtomicOp::InsertInto { target, .. }, AtomicOp::Delete { node }) => {
            if node == target {
                Some((ConflictKind::LocalOverride, false))
            } else if node.is_ancestor_of(target) {
                Some((ConflictKind::NonLocalOverride, false))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Detects all IO / LO / NLO conflicts between two PULs.
pub fn find_conflicts(first: &Pul, second: &Pul) -> Vec<Conflict> {
    let mut out = Vec::new();
    for (i, a) in first.ops.iter().enumerate() {
        for (j, b) in second.ops.iter().enumerate() {
            if let Some((kind, left_overridden)) = op_conflict(a, b) {
                out.push(Conflict { kind, left_idx: i, right_idx: j, left_overridden });
            }
        }
    }
    out
}

/// Integrates two parallel PULs into one, applying `policy` to every
/// conflict. Returns the conflicts alongside `Err` under
/// [`ConflictPolicy::Fail`].
pub fn integrate(first: &Pul, second: &Pul, policy: ConflictPolicy) -> Result<Pul, Vec<Conflict>> {
    let conflicts = find_conflicts(first, second);
    if !conflicts.is_empty() && policy == ConflictPolicy::Fail {
        return Err(conflicts);
    }
    let mut drop_first = vec![false; first.ops.len()];
    let mut drop_second = vec![false; second.ops.len()];
    for c in &conflicts {
        match policy {
            ConflictPolicy::Fail => unreachable!("handled above"),
            ConflictPolicy::FirstWins => drop_second[c.right_idx] = true,
            ConflictPolicy::SecondWins => drop_first[c.left_idx] = true,
        }
    }
    let mut ops = Vec::with_capacity(first.ops.len() + second.ops.len());
    for (i, op) in first.ops.iter().enumerate() {
        if !drop_first[i] {
            ops.push(op.clone());
        }
    }
    for (j, op) in second.ops.iter().enumerate() {
        if !drop_second[j] {
            ops.push(op.clone());
        }
    }
    Ok(Pul::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_update::compute_pul;
    use xivm_xml::parse_document;

    fn pul(doc_xml: &str, stmt: &str) -> Pul {
        let d = parse_document(doc_xml).unwrap();
        let s = xivm_update::statement::parse_statement(stmt).unwrap();
        compute_pul(&d, &s)
    }

    const DOC: &str = "<r><x><y/></x><z/></r>";

    /// Example 5.2's three conflict kinds.
    #[test]
    fn all_three_conflict_kinds() {
        // IO: both insert into //z
        let io =
            find_conflicts(&pul(DOC, "insert <a/> into //z"), &pul(DOC, "insert <b/> into //z"));
        assert_eq!(io.len(), 1);
        assert_eq!(io[0].kind, ConflictKind::InsertionOrder);

        // LO: delete //x vs insert into //x
        let lo = find_conflicts(&pul(DOC, "delete //x"), &pul(DOC, "insert <b/> into //x"));
        assert_eq!(lo.len(), 1);
        assert_eq!(lo[0].kind, ConflictKind::LocalOverride);
        assert!(lo[0].left_overridden);

        // NLO: delete //x vs insert into //x/y (descendant)
        let nlo = find_conflicts(&pul(DOC, "delete //x"), &pul(DOC, "insert <b/> into //y"));
        assert_eq!(nlo.len(), 1);
        assert_eq!(nlo[0].kind, ConflictKind::NonLocalOverride);
    }

    #[test]
    fn fail_policy_rejects() {
        let a = pul(DOC, "delete //x");
        let b = pul(DOC, "insert <b/> into //x");
        assert!(integrate(&a, &b, ConflictPolicy::Fail).is_err());
        // conflict-free integration succeeds
        let c = pul(DOC, "insert <b/> into //z");
        let merged = integrate(&a, &c, ConflictPolicy::Fail).unwrap();
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn first_and_second_wins() {
        let a = pul(DOC, "delete //x");
        let b = pul(DOC, "insert <b/> into //x");
        let fw = integrate(&a, &b, ConflictPolicy::FirstWins).unwrap();
        assert_eq!(fw.len(), 1, "the insertion is dropped");
        assert!(matches!(fw.ops[0], xivm_update::AtomicOp::Delete { .. }));
        let sw = integrate(&a, &b, ConflictPolicy::SecondWins).unwrap();
        assert_eq!(sw.len(), 1, "the deletion is dropped");
        assert!(sw.ops[0].is_insert());
    }

    #[test]
    fn symmetric_detection_when_roles_swap() {
        let a = pul(DOC, "insert <b/> into //y");
        let b = pul(DOC, "delete //x");
        let c = find_conflicts(&a, &b);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].kind, ConflictKind::NonLocalOverride);
        assert!(!c[0].left_overridden);
    }

    #[test]
    fn disjoint_puls_have_no_conflicts() {
        let a = pul(DOC, "insert <b/> into //y");
        let b = pul(DOC, "insert <b/> into //z");
        assert!(find_conflicts(&a, &b).is_empty());
    }
}
