//! The feed wire protocol: a length-prefixed frame stream over any
//! byte pipe, carrying the event frames of
//! [`xivm_core::snapshot::encode_event`] plus the handshake and
//! snapshot frames replication needs.
//!
//! # Stream layout
//!
//! Each direction starts with a fixed 10-byte header — the magic
//! `b"XIVMFEED"` and a little-endian `u16` protocol version — then
//! carries frames:
//!
//! | bytes | meaning |
//! |-------|---------|
//! | 1     | frame kind |
//! | 4     | payload length, `u32` LE |
//! | n     | payload |
//!
//! Kinds:
//!
//! | kind | name     | payload |
//! |------|----------|---------|
//! | 0    | hello    | `has_state u8` · `high_water u64` · view name (UTF-8, rest of frame) |
//! | 1    | event    | one [`encode_event`] frame (delta or lagged marker) |
//! | 2    | snapshot | `seq u64` · one [`encode_store`] image |
//! | 3    | deny     | UTF-8 reason |
//!
//! [`encode_event`]: xivm_core::snapshot::encode_event
//! [`encode_store`]: xivm_core::snapshot::encode_store
//!
//! Every multi-byte integer is little-endian, matching the snapshot
//! codec. Length prefixes are bounded by [`MAX_FRAME`] **before** any
//! allocation, mirroring the hardened snapshot reader: a corrupt or
//! adversarial peer costs at most one bounded read, never a multi-GB
//! `Vec::with_capacity`.

use std::io::{self, Read, Write};

use xivm_core::snapshot::SnapshotError;

/// Per-direction stream header magic.
pub const STREAM_MAGIC: &[u8; 8] = b"XIVMFEED";

/// Protocol version; bumped on any incompatible frame change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame payload (64 MiB). A length prefix beyond
/// this is a protocol error, not an allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Frame kinds (the one-byte tag ahead of every payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: resume point and view name.
    Hello,
    /// Server → client: one encoded [`FeedEvent`](xivm_core::subscribe::FeedEvent)
    /// ([`xivm_core::FeedEvent`]) — a delta or a lagged marker.
    Event,
    /// Server → client: a full store image plus the sequence number
    /// it reflects; replaces the replica wholesale.
    Snapshot,
    /// Server → client: the handshake was rejected (unknown view,
    /// version mismatch); the reason is human-readable.
    Deny,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Event => 1,
            FrameKind::Snapshot => 2,
            FrameKind::Deny => 3,
        }
    }

    fn from_code(code: u8) -> Option<FrameKind> {
        match code {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::Event),
            2 => Some(FrameKind::Snapshot),
            3 => Some(FrameKind::Deny),
            _ => None,
        }
    }
}

/// Everything that can go wrong on the feed path.
#[derive(Debug)]
pub enum FeedError {
    /// The underlying transport failed (includes read timeouts).
    Io(io::Error),
    /// A snapshot or event frame failed to decode.
    Snapshot(SnapshotError),
    /// The peer violated the protocol (bad magic, unknown frame kind,
    /// a sequence gap the contract forbids).
    Protocol(String),
    /// The server rejected the handshake.
    Denied(String),
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::Io(e) => write!(f, "feed transport: {e}"),
            FeedError::Snapshot(e) => write!(f, "feed payload: {e}"),
            FeedError::Protocol(what) => write!(f, "feed protocol violation: {what}"),
            FeedError::Denied(reason) => write!(f, "feed handshake denied: {reason}"),
        }
    }
}

impl std::error::Error for FeedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeedError::Io(e) => Some(e),
            FeedError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FeedError {
    fn from(e: io::Error) -> Self {
        FeedError::Io(e)
    }
}

impl From<SnapshotError> for FeedError {
    fn from(e: SnapshotError) -> Self {
        FeedError::Snapshot(e)
    }
}

/// Writes the per-direction stream header.
pub fn write_stream_header(w: &mut impl Write) -> io::Result<()> {
    w.write_all(STREAM_MAGIC)?;
    w.write_all(&PROTOCOL_VERSION.to_le_bytes())
}

/// Reads and validates the peer's stream header.
pub fn read_stream_header(r: &mut impl Read) -> Result<(), FeedError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != STREAM_MAGIC {
        return Err(FeedError::Protocol("bad stream magic".into()));
    }
    let mut ver = [0u8; 2];
    r.read_exact(&mut ver)?;
    let ver = u16::from_le_bytes(ver);
    if ver != PROTOCOL_VERSION {
        return Err(FeedError::Protocol(format!(
            "protocol version {ver}, expected {PROTOCOL_VERSION}"
        )));
    }
    Ok(())
}

/// Writes one frame (kind, length, payload). The payload must fit in
/// [`MAX_FRAME`]; oversized payloads are a caller bug surfaced as
/// `InvalidInput` rather than a malformed stream.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds MAX_FRAME"));
    }
    w.write_all(&[kind.code()])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame. The length prefix is validated against
/// [`MAX_FRAME`] before the payload buffer is allocated.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), FeedError> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let kind = FrameKind::from_code(head[0])
        .ok_or_else(|| FeedError::Protocol(format!("unknown frame kind {}", head[0])))?;
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]);
    if len > MAX_FRAME {
        return Err(FeedError::Protocol(format!("frame length {len} exceeds bound {MAX_FRAME}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((kind, payload))
}

/// Encodes a hello payload: resume point plus the view name.
pub fn hello_payload(has_state: bool, high_water: u64, view: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + view.len());
    out.push(has_state as u8);
    out.extend_from_slice(&high_water.to_le_bytes());
    out.extend_from_slice(view.as_bytes());
    out
}

/// Decodes a hello payload.
pub fn parse_hello(payload: &[u8]) -> Result<(bool, u64, String), FeedError> {
    if payload.len() < 9 {
        return Err(FeedError::Protocol("short hello frame".into()));
    }
    let has_state = match payload[0] {
        0 => false,
        1 => true,
        b => return Err(FeedError::Protocol(format!("hello state flag {b}"))),
    };
    let high_water = u64::from_le_bytes(payload[1..9].try_into().expect("checked length"));
    let view = std::str::from_utf8(&payload[9..])
        .map_err(|_| FeedError::Protocol("hello view name is not UTF-8".into()))?
        .to_owned();
    Ok((has_state, high_water, view))
}

/// Encodes a snapshot payload: the sequence number the image
/// reflects, then the [`xivm_core::snapshot::encode_store`] bytes.
pub fn snapshot_payload(seq: u64, store_bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + store_bytes.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(store_bytes);
    out
}

/// Splits a snapshot payload into (seq, store bytes).
pub fn parse_snapshot(payload: &[u8]) -> Result<(u64, &[u8]), FeedError> {
    if payload.len() < 8 {
        return Err(FeedError::Protocol("short snapshot frame".into()));
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().expect("checked length"));
    Ok((seq, &payload[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_stream_header(&mut buf).unwrap();
        write_frame(&mut buf, FrameKind::Hello, &hello_payload(true, 42, "acb")).unwrap();
        write_frame(&mut buf, FrameKind::Deny, b"nope").unwrap();

        let mut r = &buf[..];
        read_stream_header(&mut r).unwrap();
        let (kind, payload) = read_frame(&mut r).unwrap();
        assert_eq!(kind, FrameKind::Hello);
        assert_eq!(parse_hello(&payload).unwrap(), (true, 42, "acb".to_owned()));
        let (kind, payload) = read_frame(&mut r).unwrap();
        assert_eq!(kind, FrameKind::Deny);
        assert_eq!(payload, b"nope");
    }

    #[test]
    fn hostile_frame_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.push(1u8); // event
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FeedError::Protocol(_)), "{err}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"XIVMFEET");
        buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        assert!(matches!(read_stream_header(&mut &buf[..]), Err(FeedError::Protocol(_))));

        let mut buf = Vec::new();
        buf.extend_from_slice(STREAM_MAGIC);
        buf.extend_from_slice(&7u16.to_le_bytes());
        assert!(matches!(read_stream_header(&mut &buf[..]), Err(FeedError::Protocol(_))));
    }

    #[test]
    fn unknown_frame_kind_is_a_protocol_error() {
        let mut buf = vec![9u8];
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_frame(&mut &buf[..]), Err(FeedError::Protocol(_))));
    }

    #[test]
    fn snapshot_payload_roundtrip() {
        let payload = snapshot_payload(7, b"STORE");
        let (seq, bytes) = parse_snapshot(&payload).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(bytes, b"STORE");
        assert!(matches!(parse_snapshot(&payload[..4]), Err(FeedError::Protocol(_))));
    }
}
