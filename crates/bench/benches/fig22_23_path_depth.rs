//! Figures 22 and 23: maintenance time of deletion updates of varying
//! path depth (X1_L ladder /site … /site/people/person/name) against
//! the fixed view Q1, on a 100 KB and on the reference document.
//!
//! Expected shape: time *decreases* as the path lengthens — shorter
//! paths delete more of the document, producing larger Δ⁻ tables.

use xivm_bench::{averaged, figure_header, ms, repetitions, row};
use xivm_core::SnowcapStrategy;
use xivm_update::UpdateStatement;
use xivm_xmark::sizes::{reference_size, small_size};
use xivm_xmark::{generate_sized, view_pattern, DEPTH_LADDER};

fn main() {
    let reps = repetitions();
    for size in [small_size(), reference_size()] {
        let figure = if size.bytes <= small_size().bytes { "Figure 22" } else { "Figure 23" };
        figure_header(
            figure,
            &format!("deletion X1_L of varying depth against view Q1, {} document", size.label),
        );
        row(&["path".to_owned(), "total_maintenance_ms".to_owned()]);
        let doc = generate_sized(size.bytes);
        let pattern = view_pattern("Q1");
        for path in DEPTH_LADDER {
            let stmt = UpdateStatement::delete(path).expect("ladder paths parse");
            let t = averaged(reps, || {
                xivm_bench::run_once(&doc, &pattern, &stmt, SnowcapStrategy::MinimalChain).timings
            });
            row(&[path.to_owned(), format!("{:.3}", ms(t.maintenance_total()))]);
        }
    }
}
