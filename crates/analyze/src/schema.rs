//! DTD-derived label relations consumed by the shape analyses.
//!
//! [`SchemaInfo`] precomputes, once per analysis run, everything the
//! path walker asks of the grammar: the start label, the direct-child
//! alphabet of every label ([`xivm_dtd::child_label_map`]), the
//! strict-descendant reachability closure
//! ([`xivm_dtd::reachable_label_map`]), and the labels whose language
//! is empty because their required-closure runs through a cycle
//! ([`xivm_dtd::mandatory_descendants_checked`], satellite of
//! Example 3.9).

use crate::labels::Labels;
use std::collections::{BTreeSet, HashMap};
use xivm_dtd::{child_label_map, mandatory_descendants_checked, reachable_label_map, Dtd};

/// Precomputed label relations of one DTD.
#[derive(Debug, Clone)]
pub struct SchemaInfo {
    start: String,
    children: HashMap<String, BTreeSet<String>>,
    reach: HashMap<String, BTreeSet<String>>,
    empty_language: BTreeSet<String>,
    known: BTreeSet<String>,
}

impl SchemaInfo {
    /// Builds the relations from a parsed DTD. Returns `None` when the
    /// grammar has no start symbol (an empty DTD constrains nothing,
    /// so the analyses degrade to their schema-less forms).
    pub fn from_dtd(dtd: &Dtd) -> Option<SchemaInfo> {
        let start = dtd.start()?.to_owned();
        let children = child_label_map(dtd);
        let reach = reachable_label_map(dtd);
        let empty_language = mandatory_descendants_checked(dtd).empty_language;
        let mut known: BTreeSet<String> =
            dtd.element_labels().into_iter().map(str::to_owned).collect();
        // Labels mentioned only on a right-hand side (leaves without a
        // rule of their own) are still part of the alphabet.
        for kids in children.values() {
            known.extend(kids.iter().cloned());
        }
        Some(SchemaInfo { start, children, reach, empty_language, known })
    }

    /// The document-root label (the grammar's start symbol).
    pub fn start(&self) -> &str {
        &self.start
    }

    /// Is `label` part of the grammar's alphabet at all?
    pub fn is_known(&self, label: &str) -> bool {
        self.known.contains(label)
    }

    /// Does `label` have an empty language (required-closure cycle)?
    /// An element that can have no finite valid subtree can never
    /// appear in a conforming document.
    pub fn is_empty_language(&self, label: &str) -> bool {
        self.empty_language.contains(label)
    }

    /// Is `label` satisfiable: known to the grammar and possessed of at
    /// least one finite valid subtree?
    pub fn is_satisfiable(&self, label: &str) -> bool {
        self.is_known(label) && !self.is_empty_language(label)
    }

    /// The direct-child element alphabet of `label` (empty for
    /// leaves), with unsatisfiable children filtered out.
    pub fn children_of(&self, label: &str) -> BTreeSet<String> {
        self.filtered(self.children.get(label))
    }

    /// Labels that can occur as strict descendants of `label`,
    /// unsatisfiable ones filtered out.
    pub fn strict_descendants(&self, label: &str) -> BTreeSet<String> {
        self.filtered(self.reach.get(label))
    }

    /// `label` itself plus everything reachable below it.
    pub fn descendants_or_self(&self, label: &str) -> BTreeSet<String> {
        let mut out = self.strict_descendants(label);
        if self.is_satisfiable(label) {
            out.insert(label.to_owned());
        }
        out
    }

    /// Can `target` be the start label or a descendant of it — i.e.
    /// can it occur *anywhere* in a valid document?
    pub fn occurs_in_documents(&self, target: &str) -> bool {
        self.descendants_or_self(&self.start).contains(target)
    }

    /// Labels that can appear as proper ancestors of `target` in a
    /// valid document: every satisfiable label whose strict-descendant
    /// closure contains `target`.
    pub fn possible_ancestors(&self, target: &str) -> BTreeSet<String> {
        self.reach
            .iter()
            .filter(|(anc, below)| self.is_satisfiable(anc) && below.contains(target))
            .map(|(anc, _)| anc.clone())
            .collect()
    }

    /// Labels that can appear as the *direct parent* of `target` in a
    /// valid document.
    pub fn possible_parents(&self, target: &str) -> BTreeSet<String> {
        self.children
            .iter()
            .filter(|(p, kids)| self.is_satisfiable(p) && kids.contains(target))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Union of [`Self::children_of`] over a label set; `Any` parents
    /// can have any child.
    pub fn children_of_set(&self, parents: &Labels) -> Labels {
        match parents.as_set() {
            None => Labels::Any,
            Some(set) => {
                let mut out = BTreeSet::new();
                for p in set {
                    out.extend(self.children_of(p));
                }
                Labels::Set(out)
            }
        }
    }

    /// Union of [`Self::strict_descendants`] over a label set.
    pub fn strict_descendants_of_set(&self, parents: &Labels) -> Labels {
        match parents.as_set() {
            None => Labels::Any,
            Some(set) => {
                let mut out = BTreeSet::new();
                for p in set {
                    out.extend(self.strict_descendants(p));
                }
                Labels::Set(out)
            }
        }
    }

    fn filtered(&self, set: Option<&BTreeSet<String>>) -> BTreeSet<String> {
        set.into_iter().flatten().filter(|l| !self.empty_language.contains(*l)).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_dtd::grammar::figure_5a;
    use xivm_dtd::parse_dtd;

    #[test]
    fn figure_5a_relations() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        assert_eq!(s.start(), "d1");
        assert_eq!(s.children_of("d1"), ["a".to_owned()].into());
        assert!(s.strict_descendants("d1").contains("c"));
        assert!(s.occurs_in_documents("c"));
        assert!(!s.occurs_in_documents("zzz"));
        let anc = s.possible_ancestors("c");
        assert!(anc.contains("b") && anc.contains("a") && anc.contains("d1"));
        assert!(!anc.contains("c"));
        assert_eq!(s.possible_parents("c"), ["b".to_owned()].into());
    }

    #[test]
    fn empty_language_labels_are_unsatisfiable_everywhere() {
        let dtd = parse_dtd("r -> a | c\na -> b\nb -> a\nc -> ()").unwrap();
        let s = SchemaInfo::from_dtd(&dtd).unwrap();
        assert!(!s.is_satisfiable("a"));
        assert!(!s.is_satisfiable("b"));
        assert!(s.is_satisfiable("c"));
        // The dead labels are filtered out of alphabets and closures.
        assert!(!s.children_of("r").contains("a"));
        assert!(s.children_of("r").contains("c"));
        assert!(!s.occurs_in_documents("a"));
    }

    #[test]
    fn set_lifted_queries_widen_on_any() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        assert!(s.children_of_set(&Labels::Any).is_any());
        let kids = s.children_of_set(&Labels::one("d1"));
        assert_eq!(kids, Labels::one("a"));
    }

    #[test]
    fn empty_dtd_yields_no_schema() {
        assert!(SchemaInfo::from_dtd(&Dtd::default()).is_none());
    }
}
