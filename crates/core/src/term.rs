//! Union / difference terms.
//!
//! A term of the expanded maintenance expression assigns each view
//! node either its base relation `R` or its delta table `Δ`; it is
//! fully described by its set of Δ-nodes. The pure-`R` term (empty
//! Δ-set) is the view itself and never appears among maintenance terms.

use std::collections::BTreeSet;
use xivm_pattern::{PatternNodeId, TreePattern};

/// One maintenance term, identified by the view nodes bound to Δ
/// tables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Term {
    delta: BTreeSet<PatternNodeId>,
}

impl Term {
    pub fn new(delta: BTreeSet<PatternNodeId>) -> Self {
        Term { delta }
    }

    /// Builds a term from its Δ-node set.
    #[allow(clippy::should_implement_trait)] // deliberate: bare collect() would hide the Δ semantics
    pub fn from_iter(nodes: impl IntoIterator<Item = PatternNodeId>) -> Self {
        Term { delta: nodes.into_iter().collect() }
    }

    /// The Δ-bound nodes.
    pub fn delta_nodes(&self) -> &BTreeSet<PatternNodeId> {
        &self.delta
    }

    /// Number of Δ tables in the term (the `k` of Proposition 4.3).
    pub fn delta_count(&self) -> usize {
        self.delta.len()
    }

    pub fn is_delta(&self, n: PatternNodeId) -> bool {
        self.delta.contains(&n)
    }

    /// The `R`-bound nodes, in pattern pre-order (this is the `t_R`
    /// sub-expression of Proposition 3.12).
    pub fn r_part(&self, pattern: &TreePattern) -> Vec<PatternNodeId> {
        pattern.preorder().into_iter().filter(|n| !self.delta.contains(n)).collect()
    }

    /// True iff the Δ-set is *descendant-closed*: every pattern child
    /// of a Δ-node is also a Δ-node. Equivalently, the R-part is a
    /// snowcap (Proposition 3.12) — terms violating this are pruned by
    /// Proposition 3.3 (insertions) / Proposition 4.2 (deletions),
    /// because XQuery updates add or remove whole subtrees.
    pub fn is_delta_descendant_closed(&self, pattern: &TreePattern) -> bool {
        self.delta.iter().all(|&n| pattern.node(n).children.iter().all(|c| self.delta.contains(c)))
    }

    /// Δ-nodes whose pattern parent is `R`-bound: the frontier along
    /// which old data joins new data — the pairs `R_{n1} Δ_{n2}` that
    /// the ID-driven prunings (Propositions 3.8 / 4.7) inspect.
    pub fn delta_frontier(&self, pattern: &TreePattern) -> Vec<PatternNodeId> {
        self.delta
            .iter()
            .copied()
            .filter(|&n| match pattern.node(n).parent {
                Some(p) => !self.delta.contains(&p),
                None => false, // the root has no R-parent
            })
            .collect()
    }

    /// `R`-bound proper ancestors of a Δ-node.
    pub fn r_ancestors_of(&self, pattern: &TreePattern, node: PatternNodeId) -> Vec<PatternNodeId> {
        let mut out = Vec::new();
        let mut cur = pattern.node(node).parent;
        while let Some(p) = cur {
            if !self.delta.contains(&p) {
                out.push(p);
            }
            cur = pattern.node(p).parent;
        }
        out
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Δ{{")?;
        for (i, n) in self.delta.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", n.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;

    fn ids(v: &[usize]) -> BTreeSet<PatternNodeId> {
        v.iter().map(|&i| PatternNodeId(i)).collect()
    }

    #[test]
    fn descendant_closure_on_chain() {
        // //a//b//c : nodes 0,1,2
        let p = parse_pattern("//a//b//c").unwrap();
        assert!(Term::new(ids(&[2])).is_delta_descendant_closed(&p));
        assert!(Term::new(ids(&[1, 2])).is_delta_descendant_closed(&p));
        assert!(Term::new(ids(&[0, 1, 2])).is_delta_descendant_closed(&p));
        // Δ_a R_b violates the XQuery-update semantics (Prop 3.3)
        assert!(!Term::new(ids(&[0])).is_delta_descendant_closed(&p));
        assert!(!Term::new(ids(&[1])).is_delta_descendant_closed(&p));
        assert!(!Term::new(ids(&[0, 2])).is_delta_descendant_closed(&p));
    }

    #[test]
    fn descendant_closure_on_branching() {
        // //a[//b//c]//d : 0=a,1=b,2=c,3=d
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        assert!(Term::new(ids(&[3])).is_delta_descendant_closed(&p));
        assert!(Term::new(ids(&[2, 3])).is_delta_descendant_closed(&p));
        assert!(Term::new(ids(&[1, 2])).is_delta_descendant_closed(&p));
        assert!(!Term::new(ids(&[1, 3])).is_delta_descendant_closed(&p), "b without c");
    }

    #[test]
    fn r_part_complements_delta_in_preorder() {
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        let t = Term::new(ids(&[2, 3]));
        let names: Vec<_> = t.r_part(&p).iter().map(|&n| p.node(n).name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(t.delta_count(), 2);
    }

    #[test]
    fn frontier_and_r_ancestors() {
        let p = parse_pattern("//a//b//c").unwrap();
        let t = Term::new(ids(&[1, 2]));
        assert_eq!(t.delta_frontier(&p), vec![PatternNodeId(1)]);
        let anc = t.r_ancestors_of(&p, PatternNodeId(2));
        assert_eq!(anc, vec![PatternNodeId(0)]);
        // all-delta term has an empty frontier
        let all = Term::new(ids(&[0, 1, 2]));
        assert!(all.delta_frontier(&p).is_empty());
    }
}
