//! Tree patterns, XPath and the conjunctive view language.
//!
//! This crate implements the query-side substrates of the paper:
//!
//! * the tree pattern dialect **P** of Section 2.2 ([`TreePattern`]),
//!   with `/` and `//` edges, `ID` / `val` / `cont` stored-attribute
//!   annotations and `[val = c]` predicates, plus a compact textual
//!   syntax ([`fn@parse_pattern`]);
//! * the `XPath{/,//,*,[]}` dialect used by updates and views
//!   ([`xpath`]), including `and` / `or` predicates — evaluated
//!   directly over the document store (this plays the role Saxon plays
//!   in the paper's implementation: locating target nodes);
//! * the conjunctive XQuery view dialect of Figure 3 ([`view`]) and its
//!   translation to tree patterns (after Arion et al.);
//! * the algebraic compilation of patterns (Figure 4) into
//!   [`xivm_algebra::Plan`]s ([`compile`]), and an embedding-based
//!   reference evaluator ([`embed`]) used as a testing oracle.

pub mod compile;
pub mod embed;
pub mod parse_pattern;
pub mod pattern;
pub mod view;
pub mod xpath;

pub use parse_pattern::parse_pattern;
pub use pattern::{Annotations, NodeTest, PatternNode, PatternNodeId, TreePattern};
