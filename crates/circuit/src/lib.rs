//! Delta circuits: composable incremental operators over view
//! changefeeds.
//!
//! The engine's contract is that a materialized view is maintained
//! from update deltas instead of recomputation; this crate extends
//! that contract *past* the view boundary. A [`Circuit`] subscribes
//! to one or more [`Database`](xivm_core::Database) views as source
//! nodes and composes a DAG of incremental operators on top —
//! [`CircuitBuilder::filter`], [`CircuitBuilder::map`] /
//! [`CircuitBuilder::project`], hash [`CircuitBuilder::join`],
//! grouped [`CircuitBuilder::count`] / [`CircuitBuilder::sum`], and
//! [`CircuitBuilder::min`] / [`CircuitBuilder::max`] with a
//! re-scan-on-retraction fallback. Every node materializes its result
//! as a [`DerivedStore`] and maintains it in O(|Δ|) per commit by
//! consuming upstream [`RowDelta`]s and emitting its own — views over
//! views, all the way up, in the Z-set weight algebra the changefeed
//! already speaks (insert `+count`, delete `−count`, modify `0`; see
//! [`xivm_core::ViewDelta::weights`]).
//!
//! ```
//! use xivm_core::Database;
//! use xivm_circuit::{CircuitExt, Datum, Row};
//!
//! let mut db = Database::builder()
//!     .document("<shop><order><sku>tea</sku><qty>2</qty></order>\
//!                <order><sku>tea</sku><qty>1</qty></order></shop>")
//!     .view("skus", "//order{id}/sku{id,val}")
//!     .build()?;
//!
//! // source → filter → count: how many orders per sku text.
//! let mut b = db.circuit();
//! let skus = b.source("skus")?;
//! let teas = b.filter(skus, |row| row.datum(2).as_str() == Some("tea"));
//! let per_sku = b.count(teas, |row| row.project(&[2]));
//! let mut circuit = b.build();
//!
//! let tea_count = Row::new(vec![Datum::Str("tea".into()), Datum::Int(2)]);
//! assert_eq!(circuit.store(per_sku).weight_of(&tea_count), 1);
//!
//! // Commits flow through the subscription; sync folds them in.
//! db.apply("delete //order[sku = \"tea\"]")?;
//! circuit.sync(&mut db);
//! assert!(circuit.store(per_sku).is_empty());
//! # circuit.detach(&mut db);
//! # Ok::<(), xivm_core::Error>(())
//! ```
//!
//! [`Circuit::sync_to`] is a commit barrier: it folds in exactly the
//! commits up to a requested sequence number, so derived stores can
//! be read at the same boundary as a
//! [`DatabaseSnapshot`](xivm_core::DatabaseSnapshot) (whose
//! recomputation oracle is [`Circuit::recompute_at`]) and replay
//! deterministically under pipelined commits. The `xivm_circuit` row
//! of `ARCHITECTURE.md` (repository root) places the crate in the
//! workspace-wide picture; `tests/circuit.rs` of the umbrella crate
//! holds the `circuit_equals_recompute` property suite.

mod circuit;
mod op;
mod row;
mod zset;

pub use circuit::{Circuit, CircuitBuilder, CircuitExt, Node};
pub use op::{Predicate, RowFn, ValueFn};
pub use row::{Datum, Row};
pub use zset::{DerivedStore, RowDelta};
