//! Aggregation rules A1, A2 and D6 (Figure 16), for PULs to be run
//! sequentially (`Δ1 ; Δ2`).
//!
//! * **A1** — matching `ins↘(v, L1) ∈ Δ1` and `ins↘(v, L2) ∈ Δ2`:
//!   combine into `ins↘(v, [L1, L2])` inside Δ1;
//! * **A2** — A1 in reverse: combine into Δ2;
//! * **D6** — an operation of Δ2 references a node *inside a tree that
//!   Δ1 is about to insert*: splice Δ2's forest into Δ1's parameter
//!   tree and drop the Δ2 operation.
//!
//! D6 resolution: a Δ2 target strictly below a Δ1 insertion target and
//! absent from the current document can only refer to a node of the
//! pending forest. We resolve the remaining label path against the
//! forest (first match per label step) — sufficient for the paper's
//! Example 5.3 and documented as an approximation of Cavalieri et
//! al.'s full ID-projection.

use xivm_update::{AtomicOp, Pul};
use xivm_xml::{parse_document, serialize_node, DeweyId, Document};

/// What the aggregation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregationOutcome {
    pub a1_fired: usize,
    pub d6_fired: usize,
    pub ops_before: usize,
    pub ops_after: usize,
}

/// Aggregates `Δ1 ; Δ2` into a single PUL equivalent to running them
/// in sequence. `doc` is the document *before* Δ1, used to decide
/// whether a Δ2 target already exists (D6 applies only to
/// forest-internal targets).
pub fn aggregate(doc: &Document, first: &Pul, second: &Pul) -> (Pul, AggregationOutcome) {
    let mut outcome =
        AggregationOutcome { ops_before: first.len() + second.len(), ..Default::default() };
    let mut merged: Vec<AtomicOp> = first.ops.clone();
    'second: for op2 in &second.ops {
        match op2 {
            AtomicOp::InsertInto { target: t2, forest: f2 } => {
                // A1 / A2: same-target insertion merges into Δ1's op.
                for op1 in merged.iter_mut() {
                    if let AtomicOp::InsertInto { target: t1, forest: f1 } = op1 {
                        if t1 == t2 {
                            f1.push_str(f2);
                            outcome.a1_fired += 1;
                            continue 'second;
                        }
                    }
                }
                // D6: the target lives inside a pending forest of Δ1.
                if doc.find_node(t2).is_none() {
                    for op1 in merged.iter_mut() {
                        let AtomicOp::InsertInto { target: t1, forest: f1 } = op1 else {
                            continue;
                        };
                        if t1.is_ancestor_of(t2) {
                            if let Some(spliced) = splice_into_forest(doc, f1, t1, t2, f2) {
                                *f1 = spliced;
                                outcome.d6_fired += 1;
                                continue 'second;
                            }
                        }
                    }
                }
                merged.push(op2.clone());
            }
            AtomicOp::Delete { .. } => merged.push(op2.clone()),
        }
    }
    outcome.ops_after = merged.len();
    (Pul::new(merged), outcome)
}

/// Splices `addition` under the forest node addressed by the label
/// path `t1 → t2`, returning the re-serialized forest.
fn splice_into_forest(
    doc: &Document,
    forest: &str,
    t1: &DeweyId,
    t2: &DeweyId,
    addition: &str,
) -> Option<String> {
    // Parse the forest under a scratch root.
    let mut scratch = parse_document(&format!("<scratch-root>{forest}</scratch-root>")).ok()?;
    let root = scratch.root()?;
    // Walk the label path below t1 through the forest.
    let rel_steps = &t2.steps()[t1.depth()..];
    let mut cur = root;
    for step in rel_steps {
        let label_name = doc.labels().name(step.label).to_owned();
        let next = scratch.children_of(cur).iter().copied().find(|&c| {
            scratch.node(c).is_element() && scratch.label_name(scratch.node(c).label) == label_name
        })?;
        cur = next;
    }
    xivm_xml::parser::parse_forest_into(&mut scratch, cur, addition).ok()?;
    // Serialize children of the scratch root back into a forest.
    let out: String =
        scratch.children_of(root).to_vec().iter().map(|&c| serialize_node(&scratch, c)).collect();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_update::{apply_pul, compute_pul};
    use xivm_xml::serialize_document;

    fn pul(doc: &Document, stmt: &str) -> Pul {
        let s = xivm_update::statement::parse_statement(stmt).unwrap();
        compute_pul(doc, &s)
    }

    const DOC: &str = "<r><x/><y/></r>";

    /// A1: same-target insertions merge across the two PULs.
    #[test]
    fn a1_merges_same_target() {
        let d = parse_document(DOC).unwrap();
        let p1 = pul(&d, "insert <c><b/></c> into //x");
        let p2 = pul(&d, "insert <b/> into //x");
        let (agg, out) = aggregate(&d, &p1, &p2);
        assert_eq!(out.a1_fired, 1);
        assert_eq!(agg.len(), 1);
        match &agg.ops[0] {
            AtomicOp::InsertInto { forest, .. } => assert_eq!(forest, "<c><b/></c><b/>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// D6 (Example 5.3's third case): Δ2 inserts under a node that only
    /// exists inside Δ1's pending forest.
    #[test]
    fn d6_splices_into_pending_forest() {
        let mut d = parse_document(DOC).unwrap();
        let p1 = pul(&d, "insert <d><b/></d> into //x");
        // Fabricate a Δ2 op addressing the pending d under x: its ID
        // extends the x target by a d step.
        let x_target = p1.ops[0].target().clone();
        let d_label = d.intern_label("d");
        let inner = x_target.child(d_label, xivm_xml::dewey::ORD_STRIDE);
        let p2 = Pul::new(vec![AtomicOp::InsertInto { target: inner, forest: "<b/>".to_owned() }]);
        let (agg, out) = aggregate(&d, &p1, &p2);
        assert_eq!(out.d6_fired, 1);
        assert_eq!(agg.len(), 1);
        match &agg.ops[0] {
            AtomicOp::InsertInto { forest, .. } => assert_eq!(forest, "<d><b/><b/></d>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Aggregation must equal sequential application.
    #[test]
    fn aggregation_preserves_semantics() {
        let d0 = parse_document(DOC).unwrap();
        let p1 = pul(&d0, "insert <a/> into //x");
        let p2 = pul(&d0, "insert <b/> into //x");

        let mut seq = parse_document(DOC).unwrap();
        apply_pul(&mut seq, &p1).unwrap();
        apply_pul(&mut seq, &p2).unwrap();

        let (agg, _) = aggregate(&d0, &p1, &p2);
        let mut once = parse_document(DOC).unwrap();
        apply_pul(&mut once, &agg).unwrap();

        assert_eq!(serialize_document(&seq), serialize_document(&once));
    }

    #[test]
    fn unrelated_ops_concatenate() {
        let d = parse_document(DOC).unwrap();
        let p1 = pul(&d, "insert <a/> into //x");
        let p2 = pul(&d, "delete //y");
        let (agg, out) = aggregate(&d, &p1, &p2);
        assert_eq!(agg.len(), 2);
        assert_eq!(out.a1_fired + out.d6_fired, 0);
    }
}
