//! End-to-end walkthroughs of the paper's running examples, checked
//! numerically against the [`Database`] façade.

use xivm::pattern::compile::view_tuples;
use xivm::prelude::*;

fn single_view(doc: &str, pattern: &str) -> Database {
    Database::builder().document(doc).view("v", pattern).build().unwrap()
}

fn report_of(db: &Database, commit: &Commit) -> UpdateReport {
    commit.report(db.view("v").unwrap()).clone()
}

/// Figure 2 / Figure 11: the sample document, and Example 4.1's
/// deletion of //c//b from the view //a//b.
#[test]
fn example_4_1() {
    let mut db = single_view("<a><c><b/></c><f><b/></f></a>", "//a{id}//b{id}");
    let v = db.view("v").unwrap();
    assert_eq!(db.store(v).len(), 2);
    let commit = db.apply("delete //c//b").unwrap();
    let report = report_of(&db, &commit);
    assert_eq!(report.tuples_removed, 1, "the tuple (a1, a1.c1.b1) must go");
    assert_eq!(db.store(v).len(), 1);
}

/// Figure 12 + Example 4.5: the 8-tuple view //a[//c]//b reduced to
/// tuples 1, 2 and 4 by deleting //a/f/c.
#[test]
fn example_4_5() {
    let mut db =
        single_view("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>", "//a{id}[//c{id}]//b{id}");
    let v = db.view("v").unwrap();
    assert_eq!(db.store(v).len(), 8, "Figure 12 lists 8 tuples");
    let commit = db.apply("delete /a/f/c").unwrap();
    let report = report_of(&db, &commit);
    assert_eq!(report.derivations_removed, 5);
    assert_eq!(db.store(v).len(), 3, "tuples 1, 2 and 4 remain");
    // Proposition 4.2 leaves 4 terms; Δ⁻_a = ∅ leaves 3.
    assert_eq!(report.delete_prune.before, 4);
    assert_eq!(report.delete_prune.after_delta_emptiness, 3);
}

/// Example 4.8: derivation counts on //a[//b] under successive
/// deletions.
#[test]
fn example_4_8() {
    let mut db = single_view("<a><c><b/></c><f><b/></f></a>", "//a{id}[//b]");
    let v = db.view("v").unwrap();
    let key = db.store(v).sorted_tuples()[0].0.id_key();
    assert_eq!(db.store(v).count_of(&key), Some(2), "two b-witnesses");

    db.apply("delete //c//b").unwrap();
    assert_eq!(db.store(v).count_of(&key), Some(1), "count drops to 1, tuple stays");

    db.apply("delete //f//b").unwrap();
    assert_eq!(db.store(v).count_of(&key), None, "count reaches 0, tuple removed");
}

/// Example 3.1 / 3.2: inserting xml1 into a document, only the three
/// surviving terms contribute; the view gains the right tuples.
#[test]
fn examples_3_1_and_3_2() {
    let mut db = single_view("<root><a><b><t/></b></a></root>", "//a{id}//b{id}//c{id}");
    let v = db.view("v").unwrap();
    assert_eq!(db.store(v).len(), 0);
    // u1 inserts xml1 = <a><b/><b><c/></b></a> under //t
    let commit = db.apply("insert <a><b/><b><c/></b></a> into //t").unwrap();
    let report = report_of(&db, &commit);
    assert_eq!(report.insert_prune.before, 3, "3 of 7 terms survive Prop 3.3");
    // new embeddings: outer a and b with new c, plus all-new chains
    let pattern = db.pattern(v).clone();
    let expected = ViewStore::from_counted(&pattern, view_tuples(db.document(), &pattern));
    assert!(db.store(v).same_content_as(&expected));
    assert!(!db.store(v).is_empty());
}

/// Example 3.14: an insertion that only modifies stored content.
#[test]
fn example_3_14() {
    let mut db = single_view("<a><b><c><d/></c></b></a>", "/a{id}/b{id}//c{id,cont}");
    let v = db.view("v").unwrap();
    let commit = db.apply("insert <extra>some value</extra> into //d").unwrap();
    let report = report_of(&db, &commit);
    assert_eq!(report.tuples_added, 0, "no Δ⁺ relation affects the view");
    assert_eq!(report.tuples_modified, 1, "but c.cont changed");
    let cont = db.store(v).sorted_tuples()[0].0.field(2).cont.clone().unwrap();
    assert!(cont.contains("some value"));
}

/// The Figure 3 sample view parses to the Figure 4 pattern and
/// evaluates with the documented semantics.
#[test]
fn figures_3_and_4() {
    let pattern = xivm::pattern::view::parse_view(
        "for $p in doc(\"confs\")//confs//paper, $a in $p/affiliation \
         return <result> <pid>{id($p)}</pid> <aid>{id($a)}</aid> \
         <acont>{$a}</acont> </result>",
    )
    .unwrap();
    assert_eq!(pattern.to_text(), "//confs//paper{id}/affiliation{id,cont}");
    let db = Database::builder()
        .document(
            "<confs><conf><paper><affiliation>X</affiliation></paper>\
             <paper><affiliation>Y</affiliation><affiliation>Z</affiliation></paper></conf></confs>",
        )
        .view("papers", pattern)
        .build()
        .unwrap();
    let v = db.view("papers").unwrap();
    let tuples = db.store(v).sorted_tuples();
    assert_eq!(tuples.len(), 3, "one row per (paper, affiliation) pair");
    assert_eq!(tuples[0].0.field(1).cont.as_deref(), Some("<affiliation>X</affiliation>"));
}

/// Figures 6 and 7: snowcap sets of the two lattice examples.
#[test]
fn figures_6_and_7_snowcaps() {
    use xivm::core::snowcap::enumerate_snowcaps;
    let v1 = parse_pattern("//a[//b//c]//d").unwrap();
    assert_eq!(enumerate_snowcaps(&v1).len(), 6);
    let v2 = parse_pattern("//a[//b][//c]//d").unwrap();
    assert_eq!(enumerate_snowcaps(&v2).len(), 8);
}

/// Section 5 / Example 5.1-shaped reduction feeding the engine: a
/// transaction must leave the view exactly as the original statement
/// sequence, while propagating strictly fewer atomic operations than
/// the naive expansion.
#[test]
fn batched_transaction_preserves_view_and_shrinks_the_pul() {
    let src = "<r><x><w/></x><y><b/></y><z/></r>";
    let script = [
        "insert <b/> into //w",
        "delete //x",
        "insert <b>1</b> into //z",
        "insert <b>2</b> into //z",
    ];

    // plain sequential application
    let mut plain = single_view(src, "//r{id}//b{id}");
    for s in script {
        plain.apply(s).unwrap();
    }

    // one batched transaction through the PUL optimizer
    let mut batched = single_view(src, "//r{id}//b{id}");
    let mut tx = batched.transaction();
    for s in script {
        tx = tx.statement(s);
    }
    let report = tx.commit().unwrap();
    assert_eq!(report.statements, 4);
    assert!(
        report.optimized_ops < report.naive_ops,
        "the optimizer must shrink the batch: {} -> {}",
        report.naive_ops,
        report.optimized_ops
    );
    assert!(
        report.optimized_ops < report.statements,
        "the reduced PUL must be smaller than the naive statement count"
    );

    assert_eq!(plain.serialize(), batched.serialize(), "documents agree");
    let (pv, bv) = (plain.view("v").unwrap(), batched.view("v").unwrap());
    // Compare across the two databases by label *names*: raw LabelIds
    // are private to each document's interner, and the optimizer may
    // reorder (or drop) the operations that intern them.
    let render = |db: &Database, h: xivm::ViewHandle| -> Vec<String> {
        db.store(h)
            .sorted_tuples()
            .iter()
            .map(|(t, c)| {
                let ids: Vec<String> = t
                    .fields()
                    .iter()
                    .map(|f| f.id.display_with(|l| db.document().label_name(l).to_owned()))
                    .collect();
                format!("({})x{c}", ids.join(","))
            })
            .collect()
    };
    assert_eq!(render(&plain, pv), render(&batched, bv), "views agree");
    // and both agree with recomputation
    let pattern = batched.pattern(bv).clone();
    let fresh = ViewStore::from_counted(&pattern, view_tuples(batched.document(), &pattern));
    assert!(batched.store(bv).same_content_as(&fresh));
}

/// Example 5.2's conflicting pair must be rejected when a batch is
/// declared order-independent.
#[test]
fn independent_batches_reject_example_5_2_conflicts() {
    let mut db = single_view("<r><x><y/></x><z/></r>", "//r{id}//b{id}");
    let err = db
        .transaction()
        .independent()
        .statement("delete //x")
        .statement("insert <b/> into //x")
        .commit()
        .unwrap_err();
    assert!(matches!(err, Error::Conflict(_)));
    // the rejected batch left no trace
    assert_eq!(db.serialize(), "<r><x><y/></x><z/></r>");
}
