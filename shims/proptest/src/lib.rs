//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the subset of proptest that `tests/property.rs` uses:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_recursive`, integer-range / tuple / `Just` / collection /
//! bool strategies, the `proptest!` test macro with
//! `#![proptest_config(..)]`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//! - **no shrinking** — a failing case reports its seed and case
//!   number instead of a minimized input;
//! - generation is **deterministic**: the base seed is fixed (or
//!   taken from `PROPTEST_SEED`) so CI failures reproduce locally;
//! - `PROPTEST_CASES` overrides the per-test case count globally,
//!   which is how CI bounds total runtime.

pub mod test_runner {
    use std::fmt;

    /// Deterministic xoshiro256++ RNG used to drive generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Base seed: `PROPTEST_SEED` env var, else a fixed default so
        /// runs are reproducible.
        pub fn default_seed() -> u64 {
            std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x1511_2011_edb7)
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Accepted for compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; the shim never persists failures.
        pub failure_persistence: Option<()>,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }

        /// `PROPTEST_CASES` overrides the configured count so CI can
        /// bound runtime without editing tests.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
                .max(1)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 0, failure_persistence: None }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property failed; the test as a whole fails.
        Fail(String),
        /// The input was rejected (unused by this workspace).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<R: fmt::Display>(reason: R) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        pub fn reject<R: fmt::Display>(reason: R) -> Self {
            TestCaseError::Reject(reason.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type. Unlike the real
    /// crate there is no value tree / shrinking: `generate` draws a
    /// single value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a recursion tower of at most `depth` levels. The
        /// `_desired_size`/`_expected_branch_size` hints are accepted
        /// for signature compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut tower = self.clone().boxed();
            for _ in 0..depth {
                // Each level chooses leaf 1/4 of the time so the
                // generated trees vary in depth, not only in width.
                tower =
                    Union::weighted(vec![(1, self.clone().boxed()), (3, recurse(tower).boxed())])
                        .boxed();
            }
            tower
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice between strategies of one value type; backs
    /// `prop_oneof!` and the recursion tower.
    pub struct Union<T> {
        choices: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { choices: self.choices.clone(), total_weight: self.total_weight }
        }
    }

    impl<T> Union<T> {
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(choices.into_iter().map(|c| (1, c)).collect())
        }

        pub fn weighted(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!choices.is_empty(), "empty Union");
            let total_weight = choices.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total_weight > 0, "Union with zero total weight");
            Union { choices, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, choice) in &self.choices {
                if pick < u64::from(*weight) {
                    return choice.generate(rng);
                }
                pick -= u64::from(*weight);
            }
            unreachable!("weights sum below total_weight")
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + hi) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Each argument is drawn from its strategy
/// `cases` times; the body runs once per drawn set. On failure the
/// panic message names the case number and base seed so the run can
/// be reproduced with `PROPTEST_SEED`.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let cases = config.effective_cases();
                let seed = $crate::test_runner::TestRng::default_seed();
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                // A Reject does not count as a pass: the case is
                // redrawn, and too many rejects fail the test instead
                // of letting it pass vacuously (mirrors the real
                // crate's max_global_rejects).
                let max_rejects = cases.saturating_mul(16).max(256);
                let mut rejects = 0u32;
                let mut case = 0u32;
                while case < cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Catch unwinds so a panicking `unwrap` in the body
                    // still gets labeled with the case number and seed.
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                            $body
                            ::std::result::Result::Ok(())
                        })) {
                            ::std::result::Result::Ok(result) => result,
                            ::std::result::Result::Err(payload) => {
                                eprintln!(
                                    "proptest case {}/{} panicked (PROPTEST_SEED={})",
                                    case + 1, cases, seed
                                );
                                ::std::panic::resume_unwind(payload);
                            }
                        };
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(reason)) => {
                            rejects += 1;
                            if rejects > max_rejects {
                                panic!(
                                    "proptest gave up after {} rejected inputs \
                                     ({} cases passed, PROPTEST_SEED={}): {}",
                                    rejects, case, seed, reason
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                            panic!(
                                "proptest case {}/{} failed (PROPTEST_SEED={}): {}",
                                case + 1, cases, seed, reason
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Chooses uniformly (or per explicit weights) between strategies
/// producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 1u64..10, (a, b) in (0u32..4, 0usize..3), flag in prop::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4 && b < 3);
            let _ = flag;
        }

        #[test]
        fn recursive_strings_parse_shape(s in super::tests::arb_nested(3)) {
            prop_assert!(s.starts_with('(') && s.ends_with(')'));
            let depth: i64 = s.chars().map(|c| match c { '(' => 1, ')' => -1, _ => 0 }).sum();
            prop_assert_eq!(depth, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn rejected_inputs_are_redrawn_not_counted(x in 0u32..100) {
            if x % 2 == 0 {
                return Err(TestCaseError::reject("want odd"));
            }
            prop_assert!(x % 2 == 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

        // Not a #[test] itself: driven by `all_rejects_fail_the_test`.
        // The condition always holds; phrasing it as `if` keeps the
        // macro's trailing Ok(()) statically reachable.
        fn always_rejects(x in 0u32..10) {
            if x < 10 {
                return Err(TestCaseError::reject("never satisfiable"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "gave up after")]
    fn all_rejects_fail_the_test() {
        always_rejects();
    }

    pub fn arb_nested(depth: u32) -> impl Strategy<Value = String> {
        let leaf = Just("()".to_owned());
        leaf.prop_recursive(depth, 8, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(|kids| format!("({})", kids.join("")))
        })
    }
}
