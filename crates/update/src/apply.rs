//! Applying pending update lists to the document.
//!
//! `apply-insert(n, t)` (Section 3.4) copies the forest into its new
//! context; crucially, the copies receive their Dewey IDs *in the new
//! context* as a side effect, and those IDs are what the Δ⁺ tables are
//! built from. Deletions capture the `(ID, label)` of every removed
//! node before detaching, which is what the Δ⁻ tables are built from.

use crate::pul::{AtomicOp, Pul};
use xivm_xml::{parser::parse_forest_into, DeweyId, Document, NodeId, NodeKind, XmlError};

/// A node removed by a deletion: everything Δ⁻ extraction needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletedNode {
    pub id: DeweyId,
    /// Label name (attributes keep their `@` prefix, text nodes are
    /// `#text`).
    pub label: String,
    pub kind: NodeKind,
}

/// Outcome of applying a PUL.
#[derive(Debug, Clone, Default)]
pub struct ApplyResult {
    /// Every newly created node (roots and descendants), live in the
    /// updated document.
    pub inserted: Vec<NodeId>,
    /// Roots of the inserted forests only.
    pub inserted_roots: Vec<NodeId>,
    /// Every removed node, pre-order within each deleted subtree.
    pub deleted: Vec<DeletedNode>,
    /// IDs of the nodes that received insertions (the `p1 … pk` of
    /// Proposition 3.8).
    pub insert_targets: Vec<DeweyId>,
}

impl ApplyResult {
    pub fn is_noop(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

/// Applies every atomic operation of `pul` to `doc`, in order.
///
/// Operations whose target no longer exists (e.g. removed by an
/// earlier `del` in the same PUL — XQuery Update applies deletions of
/// already-deleted nodes as no-ops) are skipped.
pub fn apply_pul(doc: &mut Document, pul: &Pul) -> Result<ApplyResult, XmlError> {
    let mut result = ApplyResult::default();
    for op in &pul.ops {
        match op {
            AtomicOp::InsertInto { target, forest } => {
                let Some(parent) = doc.find_node(target) else {
                    continue; // target vanished: no-op
                };
                let roots = parse_forest_into(doc, parent, forest)?;
                for &r in &roots {
                    result.inserted.extend(doc.descendants_or_self(r));
                }
                result.inserted_roots.extend(roots);
                result.insert_targets.push(target.clone());
            }
            AtomicOp::Delete { node } => {
                let Some(target) = doc.find_node(node) else {
                    continue;
                };
                // Capture (ID, label, kind) for Δ⁻ before detaching.
                let doomed = doc.descendants_or_self(target);
                for &n in &doomed {
                    result.deleted.push(DeletedNode {
                        id: doc.dewey(n),
                        label: doc.label_name(doc.node(n).label).to_owned(),
                        kind: doc.node(n).kind,
                    });
                }
                doc.remove_subtree(target)?;
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pul::compute_pul;
    use crate::statement::UpdateStatement;
    use xivm_xml::{parse_document, serialize_document};

    #[test]
    fn insert_assigns_ids_in_new_context() {
        let mut d = parse_document("<a><c/></a>").unwrap();
        let stmt = UpdateStatement::insert("//c", "<b><x/></b>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        assert_eq!(res.inserted_roots.len(), 1);
        assert_eq!(res.inserted.len(), 2, "b and x");
        let b = res.inserted_roots[0];
        let c_label = d.label_id("c").unwrap();
        assert_eq!(d.dewey(b).label_path()[1], c_label, "b sits under c in its ID");
        assert_eq!(serialize_document(&d), "<a><c><b><x/></b></c></a>");
        d.check_invariants().unwrap();
    }

    #[test]
    fn delete_captures_subtree_preorder() {
        let mut d = parse_document("<a><c><b/><b/></c><f/></a>").unwrap();
        let stmt = UpdateStatement::delete("//c").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let labels: Vec<_> = res.deleted.iter().map(|n| n.label.clone()).collect();
        assert_eq!(labels, vec!["c", "b", "b"]);
        assert_eq!(serialize_document(&d), "<a><f/></a>");
    }

    #[test]
    fn delete_of_vanished_node_is_noop() {
        // //c//b and //c in one PUL: removing c takes b with it; the
        // later del(b) must be a no-op.
        let mut d = parse_document("<a><c><b/></c></a>").unwrap();
        let s1 = UpdateStatement::delete("//c").unwrap();
        let s2 = UpdateStatement::delete("//b").unwrap();
        let mut pul = compute_pul(&d, &s1);
        pul.ops.extend(compute_pul(&d, &s2).ops);
        let res = apply_pul(&mut d, &pul).unwrap();
        // b is reported once (as part of c's subtree), not twice
        assert_eq!(res.deleted.len(), 2);
        assert_eq!(serialize_document(&d), "<a/>");
    }

    #[test]
    fn multi_target_insert() {
        let mut d = parse_document("<r><p/><p/><p/></r>").unwrap();
        let stmt = UpdateStatement::insert("//p", "<n/>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        assert_eq!(res.inserted.len(), 3);
        assert_eq!(res.insert_targets.len(), 3);
        assert_eq!(serialize_document(&d), "<r><p><n/></p><p><n/></p><p><n/></p></r>");
    }

    #[test]
    fn attributes_in_inserted_forest_are_tracked() {
        let mut d = parse_document("<r><p/></r>").unwrap();
        let stmt = UpdateStatement::insert("//p", "<i k=\"1\">t</i>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        // i, @k, #text
        assert_eq!(res.inserted.len(), 3);
    }

    #[test]
    fn noop_detection() {
        let mut d = parse_document("<r/>").unwrap();
        let stmt = UpdateStatement::delete("//missing").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        assert!(res.is_noop());
    }
}
