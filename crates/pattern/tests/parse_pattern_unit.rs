//! Unit tests for the compact pattern syntax: the six shapes the
//! property suite relies on must parse to the expected trees, and
//! malformed input must come back as `Err`, never a panic.

use xivm_algebra::Axis;
use xivm_pattern::{parse_pattern, Annotations, NodeTest, PatternNodeId, TreePattern};

fn child_of(p: &TreePattern, node: PatternNodeId, idx: usize) -> PatternNodeId {
    p.node(node).children[idx]
}

fn assert_node(
    p: &TreePattern,
    node: PatternNodeId,
    name: &str,
    edge: Axis,
    ann: Annotations,
    n_children: usize,
) {
    let n = p.node(node);
    assert_eq!(n.test, NodeTest::Name(name.to_owned()), "name of {node:?}");
    assert_eq!(n.edge, edge, "edge of {node:?}");
    assert_eq!(n.ann, ann, "annotations of {node:?}");
    assert_eq!(n.children.len(), n_children, "children of {node:?}");
}

const ID: Annotations = Annotations::ID;
const NONE: Annotations = Annotations::NONE;

#[test]
fn shape_descendant_chain() {
    // //a{id}//b{id}
    let p = parse_pattern("//a{id}//b{id}").unwrap();
    assert_eq!(p.len(), 2);
    let a = p.root();
    assert_node(&p, a, "a", Axis::Descendant, ID, 1);
    let b = child_of(&p, a, 0);
    assert_node(&p, b, "b", Axis::Descendant, ID, 0);
    assert!(p.node(a).val_pred.is_none() && p.node(b).val_pred.is_none());
}

#[test]
fn shape_predicate_branch() {
    // //a{id}[//c{id}]//b{id} — branch first, then the main path.
    let p = parse_pattern("//a{id}[//c{id}]//b{id}").unwrap();
    assert_eq!(p.len(), 3);
    let a = p.root();
    assert_node(&p, a, "a", Axis::Descendant, ID, 2);
    let c = child_of(&p, a, 0);
    assert_node(&p, c, "c", Axis::Descendant, ID, 0);
    let b = child_of(&p, a, 1);
    assert_node(&p, b, "b", Axis::Descendant, ID, 0);
}

#[test]
fn shape_three_level_chain() {
    // //a{id}//b{id}//c{id}
    let p = parse_pattern("//a{id}//b{id}//c{id}").unwrap();
    assert_eq!(p.len(), 3);
    let a = p.root();
    let b = child_of(&p, a, 0);
    let c = child_of(&p, b, 0);
    assert_node(&p, a, "a", Axis::Descendant, ID, 1);
    assert_node(&p, b, "b", Axis::Descendant, ID, 1);
    assert_node(&p, c, "c", Axis::Descendant, ID, 0);
}

#[test]
fn shape_multi_annotation() {
    // //r{id}//d{id,val}
    let p = parse_pattern("//r{id}//d{id,val}").unwrap();
    assert_eq!(p.len(), 2);
    let r = p.root();
    let d = child_of(&p, r, 0);
    assert_node(&p, r, "r", Axis::Descendant, ID, 1);
    assert_node(&p, d, "d", Axis::Descendant, Annotations { id: true, val: true, cont: false }, 0);
    assert!(p.node(d).ann.stores_text());
}

#[test]
fn shape_value_predicate_branch() {
    // //a{id}[//d[val="5"]]//b{id}
    let p = parse_pattern("//a{id}[//d[val=\"5\"]]//b{id}").unwrap();
    assert_eq!(p.len(), 3);
    let a = p.root();
    assert_node(&p, a, "a", Axis::Descendant, ID, 2);
    let d = child_of(&p, a, 0);
    assert_node(&p, d, "d", Axis::Descendant, NONE, 0);
    assert_eq!(p.node(d).val_pred.as_deref(), Some("5"));
    let b = child_of(&p, a, 1);
    assert_node(&p, b, "b", Axis::Descendant, ID, 0);
    assert!(p.node(b).val_pred.is_none());
}

#[test]
fn shape_existential_branch_with_cont() {
    // //a{id,cont}[//b]
    let p = parse_pattern("//a{id,cont}[//b]").unwrap();
    assert_eq!(p.len(), 2);
    let a = p.root();
    assert_node(&p, a, "a", Axis::Descendant, Annotations { id: true, val: false, cont: true }, 1);
    let b = child_of(&p, a, 0);
    assert_node(&p, b, "b", Axis::Descendant, NONE, 0);
}

#[test]
fn child_axis_attributes_and_wildcards_parse() {
    let p = parse_pattern("/site/people/person{id}[/@id]/name{id,val}").unwrap();
    assert_eq!(p.len(), 5);
    let site = p.root();
    assert_node(&p, site, "site", Axis::Child, NONE, 1);
    let person = child_of(&p, child_of(&p, site, 0), 0);
    assert_eq!(p.node(person).children.len(), 2);
    let attr = child_of(&p, person, 0);
    assert_eq!(p.node(attr).test, NodeTest::Name("@id".to_owned()));
    assert_eq!(p.node(attr).edge, Axis::Child);

    let w = parse_pattern("//*{id}").unwrap();
    assert_eq!(w.node(w.root()).test, NodeTest::Wildcard);
}

#[test]
fn to_text_roundtrips_the_property_suite_shapes() {
    // `to_text` normalizes a sole trailing branch (`a[//b]`) into
    // main-path syntax (`a//b`) — same tree, one canonical rendering —
    // so the expected text differs from the input for the last shape.
    for (shape, canonical) in [
        ("//a{id}//b{id}", "//a{id}//b{id}"),
        ("//a{id}[//c{id}]//b{id}", "//a{id}[//c{id}]//b{id}"),
        ("//a{id}//b{id}//c{id}", "//a{id}//b{id}//c{id}"),
        ("//r{id}//d{id,val}", "//r{id}//d{id,val}"),
        ("//a{id}[//d[val=\"5\"]]//b{id}", "//a{id}[//d[val=\"5\"]]//b{id}"),
        ("//a{id,cont}[//b]", "//a{id,cont}//b"),
    ] {
        let parsed = parse_pattern(shape).unwrap();
        assert_eq!(parsed.to_text(), canonical, "canonical rendering of {shape}");
        // The canonical form is a fixpoint: reparsing yields the same
        // tree and the same text.
        let reparsed = parse_pattern(&parsed.to_text()).unwrap();
        assert_eq!(reparsed.to_text(), canonical);
        assert_eq!(reparsed.len(), parsed.len());
    }
}

#[test]
fn malformed_patterns_error_instead_of_panicking() {
    let malformed = [
        "",              // nothing at all
        "a",             // missing leading axis
        "//",            // axis without a label
        "///a",          // empty step
        "//a{",          // unterminated annotation list
        "//a{}",         // empty annotation list
        "//a{bogus}",    // unknown annotation item
        "//a{id,}",      // dangling comma
        "//a[",          // unterminated branch
        "//a[//b",       // branch never closed
        "//a[]",         // empty branch
        "//a[val=5]",    // unquoted predicate value
        "//a[val=\"5]",  // unterminated predicate string
        "//a[val=\"5\"", // predicate missing ']'
        "//a]]",         // stray closing brackets
        "//a//b extra",  // trailing garbage
        "//a{id}{id}",   // duplicate annotation block
    ];
    for input in malformed {
        let result = std::panic::catch_unwind(|| parse_pattern(input));
        match result {
            Ok(parsed) => assert!(parsed.is_err(), "parser accepted malformed input {input:?}"),
            Err(_) => panic!("parser panicked on malformed input {input:?}"),
        }
    }
}
