//! Update-sequence pipeline: schema guarding and batched transactions.
//!
//! Shows the two companion facilities around the maintenance engine:
//!
//! 1. **DTD Δ⁺ checks** (Section 3.3) — rejecting an insertion that
//!    would certainly violate the schema, before touching anything;
//! 2. **PUL optimization** (Section 5) — a [`Database`] transaction
//!    collapsing a sequence of statements into fewer atomic operations
//!    and propagating them in one pass (Figure 13's CP → OR →
//!    PINT/PDDT pipeline), plus conflict detection for batches that
//!    must be order-independent.
//!
//! ```sh
//! cargo run --example update_pipeline
//! ```

use xivm::dtd::{check_insert, implications, parse_dtd};
use xivm::prelude::*;

fn main() -> Result<(), Error> {
    // --- 1. schema guarding -------------------------------------------------
    // Figure 5(a): every b must contain a c.
    let dtd = parse_dtd(
        "d1 -> AS\n\
         AS -> a+\n\
         a -> BS\n\
         BS -> b+\n\
         b -> c\n\
         c -> ()",
    )
    .expect("valid DTD");
    println!("Δ⁺ implications derived from the DTD:");
    for imp in implications(&dtd) {
        println!("  {imp}");
    }
    // Example 3.9: this insertion cannot be valid.
    let bad = check_insert(&dtd, "AS", "<a><b></b></a>");
    println!("\ninsert <a><b/></a>      → {}", bad.unwrap_err());
    let good = check_insert(&dtd, "AS", "<a><b><c/></b></a>");
    println!("insert <a><b><c/></b></a> → {:?} (accepted)", good);

    // --- 2. batched transactions through the PUL optimizer ------------------
    let mut db = Database::builder()
        .document("<r><x><w/></x><y/><z/></r>")
        .view("rb", "//r{id}//b{id}")
        .build()?;

    // A sequence of statements, as an application would issue them.
    let commit = db
        .transaction()
        .statement("insert <b/> into //w") // pointless: //x is deleted below (rule O3)
        .statement("insert <b/> into //x") // pointless: //x is deleted below (rule O1)
        .statement("delete //x")
        .statement("insert <b>1</b> into //z") // merged with the next (rules A1/I5)
        .statement("insert <b>2</b> into //z")
        .commit()?;
    println!(
        "\nreduced {} statements ({} atomic operations) to {} \
         (O1 fired {}, O3 fired {}, I5 fired {})",
        commit.statements,
        commit.naive_ops,
        commit.optimized_ops,
        commit.reduction.o1_fired,
        commit.reduction.o3_fired,
        commit.reduction.i5_fired,
    );
    let rb = db.view("rb")?;
    let r = commit.report(rb);
    println!(
        "propagated in one pass: +{} tuples, -{} tuples ({} delta entries), document now: {}",
        r.tuples_added,
        r.tuples_removed,
        commit.delta(rb).len(),
        db.serialize()
    );

    // --- 3. order-independent batches are conflict-checked ------------------
    let err = db
        .transaction()
        .independent()
        .statement("delete //y")
        .statement("insert <b/> into //y")
        .commit()
        .unwrap_err();
    println!("\nconflicting independent batch rejected: {err}");
    println!("document unchanged: {}", db.serialize());
    Ok(())
}
