//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the subset of criterion used by `crates/bench`:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of
//! criterion's statistical machinery it runs a fixed warm-up, sizes
//! the measurement loop to a wall-clock budget, and prints mean
//! time per iteration — enough to compare runs of the same machine.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark, tunable for CI.
fn measure_budget() -> Duration {
    match std::env::var("XIVM_BENCH_MS").ok().and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => Duration::from_millis(ms.max(1)),
        None => Duration::from_millis(200),
    }
}

/// How a batched setup's cost relates to the routine (kept for API
/// compatibility; the shim times each batch individually either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Collects one benchmark's measurement.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a loop sized to the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration estimate.
        let warmup = Instant::now();
        let mut probe_iters = 0u64;
        while warmup.elapsed() < Duration::from_millis(20) && probe_iters < 1_000_000 {
            std::hint::black_box(routine());
            probe_iters += 1;
        }
        let per_iter = warmup.elapsed().checked_div(probe_iters as u32).unwrap_or_default();
        let budget = measure_budget();
        let iters = if per_iter.is_zero() {
            1_000_000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = measure_budget();
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while measured < budget && wall.elapsed() < budget * 4 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.elapsed = measured;
        self.iters = iters.max(1);
    }

    fn nanos_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// No-op in the shim; real criterion parses `--bench`/filters here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        let ns = b.nanos_per_iter();
        if ns >= 1e6 {
            println!("{id:<40} {:>12.3} ms/iter ({} iters)", ns / 1e6, b.iters);
        } else if ns >= 1e3 {
            println!("{id:<40} {:>12.3} us/iter ({} iters)", ns / 1e3, b.iters);
        } else {
            println!("{id:<40} {:>12.1} ns/iter ({} iters)", ns, b.iters);
        }
        self
    }
}

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        std::env::set_var("XIVM_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| 1 + 1));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
